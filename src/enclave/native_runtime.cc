#include "src/enclave/native_runtime.h"

#include <cassert>

namespace komodo::enclave {

using arm::Exception;

bool UserContext::Read(vaddr va, word* out) {
  if (!arm::IsWordAligned(va)) {
    return false;
  }
  const arm::WalkResult w = arm::WalkPageTable(m_.mem, m_.ttbr0, va);
  if (!w.ok || !w.user_read) {
    return false;
  }
  m_.cycles.Charge(arm::kCortexA7Costs.load);
  *out = m_.mem.Read(w.phys);
  return true;
}

bool UserContext::Write(vaddr va, word value) {
  if (!arm::IsWordAligned(va)) {
    return false;
  }
  const arm::WalkResult w = arm::WalkPageTable(m_.mem, m_.ttbr0, va);
  if (!w.ok || !w.user_write) {
    return false;
  }
  m_.cycles.Charge(arm::kCortexA7Costs.store);
  m_.mem.Write(w.phys, value);
  return true;
}

bool UserContext::ReadBytes(vaddr va, uint8_t* out, size_t len) {
  size_t i = 0;
  while (i < len) {
    const vaddr byte_va = va + static_cast<vaddr>(i);
    word w;
    if (!Read(byte_va & ~3u, &w)) {
      return false;
    }
    if ((byte_va & 3u) == 0 && len - i >= 4) {
      // Aligned full word: one load serves four bytes.
      out[i] = static_cast<uint8_t>(w);
      out[i + 1] = static_cast<uint8_t>(w >> 8);
      out[i + 2] = static_cast<uint8_t>(w >> 16);
      out[i + 3] = static_cast<uint8_t>(w >> 24);
      i += 4;
    } else {
      out[i] = static_cast<uint8_t>(w >> ((byte_va & 3u) * 8));
      ++i;
    }
  }
  return true;
}

bool UserContext::WriteBytes(vaddr va, const uint8_t* data, size_t len) {
  size_t i = 0;
  while (i < len) {
    const vaddr byte_va = va + static_cast<vaddr>(i);
    if ((byte_va & 3u) == 0 && len - i >= 4) {
      const word w = static_cast<word>(data[i]) | (static_cast<word>(data[i + 1]) << 8) |
                     (static_cast<word>(data[i + 2]) << 16) |
                     (static_cast<word>(data[i + 3]) << 24);
      if (!Write(byte_va & ~3u, w)) {
        return false;
      }
      i += 4;
    } else {
      // Unaligned edge: read-modify-write the containing word.
      word w;
      if (!Read(byte_va & ~3u, &w)) {
        return false;
      }
      const unsigned shift = (byte_va & 3u) * 8;
      w = (w & ~(0xffu << shift)) | (static_cast<word>(data[i]) << shift);
      if (!Write(byte_va & ~3u, w)) {
        return false;
      }
      ++i;
    }
  }
  return true;
}

NativeRuntime::NativeRuntime(Monitor& monitor) : monitor_(&monitor) {
  monitor.SetUserRunner([this](arm::MachineState& m) { return RunUser(m); });
}

void NativeRuntime::Register(PageNr l1pt_page, std::shared_ptr<NativeProgram> program) {
  programs_[PagePaddr(l1pt_page)] = std::move(program);
}

Exception NativeRuntime::RunUser(arm::MachineState& m) {
  assert(m.cpsr.mode == arm::Mode::kUser);
  assert(m.tlb_consistent);

  // Pending interrupts win, as they would before the first instruction.
  if (m.pending_fiq && !m.cpsr.fiq_masked) {
    m.pending_fiq = false;
    m.TakeException(Exception::kFiq, m.pc + 4);
    return Exception::kFiq;
  }
  if (m.pending_irq && !m.cpsr.irq_masked) {
    m.pending_irq = false;
    m.TakeException(Exception::kIrq, m.pc + 4);
    return Exception::kIrq;
  }

  const auto it = programs_.find(m.ttbr0);
  if (it == programs_.end()) {
    // No native program for this address space: it is an ordinary interpreted
    // enclave. Run it like the monitor's default engine would (interpreter
    // with the environment's timer backstop).
    std::optional<Exception> exc =
        arm::RunUntilException(m, monitor_->config().max_enclave_steps);
    if (!exc.has_value()) {
      m.pending_irq = true;
      exc = arm::RunUntilException(m, 2);
    }
    assert(exc.has_value());
    return *exc;
  }

  UserContext ctx(m);
  const UserAction action = it->second->Run(ctx);
  switch (action.kind) {
    case UserAction::Kind::kExit:
    case UserAction::Kind::kSvc:
      m.r[0] = action.svc_call;
      m.r[1] = action.args[0];
      m.r[2] = action.args[1];
      m.r[3] = action.args[2];
      m.cycles.Charge(arm::kCortexA7Costs.svc_smc_issue);
      m.TakeException(Exception::kSvc, m.pc + 4);
      return Exception::kSvc;
    case UserAction::Kind::kFault:
      m.TakeException(Exception::kDataAbort, m.pc + 8);
      return Exception::kDataAbort;
  }
  return Exception::kDataAbort;
}

}  // namespace komodo::enclave
