#include "src/enclave/example_programs.h"

#include "src/arm/assembler.h"
#include "src/core/kom_defs.h"
#include "src/os/os.h"

namespace komodo::enclave {

using namespace arm;

std::vector<word> QuickstartProgram() {
  Assembler a(os::kEnclaveCodeVa);
  a.Add(R1, R0, R1);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

std::vector<word> HeapProgram() {
  Assembler a(os::kEnclaveCodeVa);
  a.Mov(R7, R0);  // spare #1
  a.MovImm(R0, kSvcMapData);
  a.Mov(R1, R7);
  a.MovImm(R2, MakeMapping(0x30000, kMapR | kMapW));
  a.Svc();
  a.MovImm(R4, 0x30000);
  a.MovImm(R5, 0xfeed);
  a.Str(R5, R4, 0);
  a.Ldr(R1, R4, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

std::vector<word> DrillVictimProgram() {
  Assembler a(os::kEnclaveCodeVa);
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);
  a.Mul(R6, R5, R5);
  a.Str(R6, R4, 4);
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

std::vector<word> VaultProgram() {
  constexpr word kMaxAttempts = 3;
  Assembler a(os::kEnclaveCodeVa);
  a.MovImm(R4, os::kEnclaveDataVa);
  a.MovImm(R5, os::kEnclaveSharedVa);

  // not_locked = ~0 iff attempts < kMaxAttempts (ASR drags out the sign bit).
  a.Ldr(R6, R4, 16);  // attempts
  a.Sub(R7, R6, kMaxAttempts);
  a.Asr(R11, R7, 31);

  // diff = OR of word-wise XORs against the secret; every word is always
  // compared, so the access pattern is guess-independent.
  a.MovImm(R7, 0);
  for (int i = 0; i < 4; ++i) {
    a.Ldr(R8, R4, i * 4);  // secret word
    a.Ldr(R9, R5, i * 4);  // guess word
    a.Eor(R8, R8, R9);
    a.Orr(R7, R7, R8);
  }

  // wrong = ~0 iff diff != 0: (diff | -diff) has the sign bit set exactly
  // when diff is nonzero.
  a.Rsb(R8, R7, 0u);
  a.Orr(R8, R8, R7);
  a.Asr(R12, R8, 31);

  a.And(R8, R12, R11);  // eff_wrong = wrong  & not_locked
  a.Mvn(R9, R12);
  a.And(R9, R9, R11);   // eff_ok    = ~wrong & not_locked

  // result = locked ? 2 : eff_ok ? 1 : 0, selected by masks.
  a.Mvn(R10, R11);
  a.And(R10, R10, 2);
  a.And(R7, R9, 1);
  a.Orr(R10, R10, R7);

  // attempts' = locked ? attempts : eff_wrong ? attempts + 1 : 0.
  a.Mvn(R7, R11);
  a.And(R7, R6, R7);
  a.Add(R6, R6, 1u);
  a.And(R6, R6, R8);
  a.Orr(R6, R6, R7);
  a.Str(R6, R4, 16);

  // Release the payload under the ok mask (zeros otherwise).
  for (int i = 0; i < 4; ++i) {
    a.Ldr(R2, R4, 20 + i * 4);
    a.And(R2, R2, R9);
    a.Str(R2, R5, 20 + i * 4);
  }

  a.Str(R10, R5, 16);  // result word
  a.Mov(R1, R10);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

}  // namespace komodo::enclave
