// Enclave programs used by the examples/ demos. They live here (rather than
// inline in each example's main) so komodo-lint and the analysis test suite
// can statically check the exact code the demos run.
#ifndef SRC_ENCLAVE_EXAMPLE_PROGRAMS_H_
#define SRC_ENCLAVE_EXAMPLE_PROGRAMS_H_

#include <vector>

#include "src/arm/types.h"

namespace komodo::enclave {

using arm::word;

// examples/quickstart: r1 = arg1 + arg2, then Exit.
std::vector<word> QuickstartProgram();

// examples/dynamic_memory: maps the spare page passed in r0 as heap at
// 0x30000, writes and reads back a value, Exit(value).
std::vector<word> HeapProgram();

// examples/adversary_drill: the victim — computes on a secret in its data
// page and exits 0.
std::vector<word> DrillVictimProgram();

// examples/password_vault. Data page: words 0..3 secret, word 4 failed-attempt
// count, words 5..8 payload released on success. Shared page: words 0..3
// guess; word 4 result (1 ok / 0 bad / 2 locked); words 5..8 released payload.
//
// Written constant-time: no branch, flag, or access pattern depends on the
// secret or the guess — outcomes are selected with bitmasks, so the only
// information the OS observes is the declassified result word. komodo-lint
// verifies this (an earlier branching version was a real finding).
std::vector<word> VaultProgram();

}  // namespace komodo::enclave

#endif  // SRC_ENCLAVE_EXAMPLE_PROGRAMS_H_
