#include "src/enclave/programs.h"

#include "src/arm/assembler.h"
#include "src/core/kom_defs.h"
#include "src/os/os.h"

namespace komodo::enclave {

using arm::Assembler;
using arm::Cond;
using namespace arm;  // register names

namespace {

// All programs are linked at the conventional code VA.
Assembler NewAsm() { return Assembler(os::kEnclaveCodeVa); }

// Emits "r0 = kSvcExit; r1 = <retval already in reg>; svc".
void EmitExit(Assembler& a, Reg retval_reg) {
  if (retval_reg != R1) {
    a.Mov(R1, retval_reg);
  }
  a.MovImm(R0, kSvcExit);
  a.Svc();
}

}  // namespace

std::vector<word> AddTwoProgram() {
  Assembler a = NewAsm();
  a.Add(R1, R0, R1);  // arg1 + arg2
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

std::vector<word> EchoSharedProgram() {
  Assembler a = NewAsm();
  a.MovImm(R4, os::kEnclaveSharedVa);
  a.Ldr(R5, R4, 0);             // x = shared[0]
  a.AddShifted(R6, R5, R5, ShiftKind::kLsl, 0);  // 2x via r5+r5
  a.Add(R6, R6, 1u);            // 2x + 1
  a.Str(R6, R4, 4);             // shared[1] = 2x+1
  EmitExit(a, R5);
  return a.Finish();
}

std::vector<word> CounterProgram() {
  Assembler a = NewAsm();
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);   // counter
  a.Add(R5, R5, R0);  // += arg1
  a.Str(R5, R4, 0);
  EmitExit(a, R5);
  return a.Finish();
}

std::vector<word> SpinProgram() {
  Assembler a = NewAsm();
  Assembler::Label spin = a.NewLabel();
  Assembler::Label skip = a.NewLabel();
  a.Cmp(R0, 0u);
  a.B(skip, Cond::kEq);
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Str(R0, R4, 0);
  a.Bind(skip);
  a.MovImm(R6, 0);
  a.Bind(spin);
  a.Add(R6, R6, 1u);  // keep some visible progress in r6
  a.B(spin);
  return a.Finish();
}

std::vector<word> CounterBatchProgram() {
  Assembler a = NewAsm();
  Assembler::Label loop = a.NewLabel();
  Assembler::Label done = a.NewLabel();
  a.MovImm(R4, os::kEnclaveSharedVa);
  a.Ldr(R5, R4, 0);  // n
  a.MovImm(R9, os::kEnclaveDataVa);
  a.Ldr(R6, R9, 0);  // counter
  a.MovImm(R7, 0);   // i
  a.Bind(loop);
  a.Cmp(R7, R5);
  a.B(done, Cond::kCs);  // unsigned i >= n
  a.AddShifted(R8, R4, R7, ShiftKind::kLsl, 2);  // &shared[i]
  a.Ldr(R10, R8, 4);      // shared[1+i]
  a.Add(R6, R6, R10);     // counter += arg
  a.Str(R6, R8, 33 * 4);  // shared[33+i] = counter
  a.Add(R7, R7, 1u);
  a.B(loop);
  a.Bind(done);
  a.Str(R6, R9, 0);  // persist the counter in the private data page
  EmitExit(a, R5);
  return a.Finish();
}

std::vector<word> EchoBatchProgram() {
  Assembler a = NewAsm();
  Assembler::Label loop = a.NewLabel();
  Assembler::Label done = a.NewLabel();
  a.MovImm(R4, os::kEnclaveSharedVa);
  a.Ldr(R5, R4, 0);  // n
  a.MovImm(R7, 0);   // i
  a.Bind(loop);
  a.Cmp(R7, R5);
  a.B(done, Cond::kCs);
  a.AddShifted(R8, R4, R7, ShiftKind::kLsl, 2);
  a.Ldr(R10, R8, 4);   // x = shared[1+i]
  a.Add(R6, R10, R10);  // 2x
  a.Add(R6, R6, 1u);    // 2x + 1
  a.Str(R6, R8, 33 * 4);
  a.Add(R7, R7, 1u);
  a.B(loop);
  a.Bind(done);
  EmitExit(a, R5);
  return a.Finish();
}

std::vector<word> AttestProgram() {
  Assembler a = NewAsm();
  // data page: words 0..7 = user data (arg1 + i), words 8..15 = MAC output.
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Mov(R5, R0);  // arg1
  for (word i = 0; i < 8; ++i) {
    a.Add(R6, R5, i);
    a.Str(R6, R4, static_cast<int32_t>(i * 4));
  }
  a.MovImm(R0, kSvcAttest);
  a.MovImm(R1, os::kEnclaveDataVa);       // data
  a.MovImm(R2, os::kEnclaveDataVa + 32);  // mac out
  a.Svc();
  // Copy the MAC to the shared page for the OS to ferry to a verifier.
  a.MovImm(R4, os::kEnclaveDataVa + 32);
  a.MovImm(R7, os::kEnclaveSharedVa);
  for (word i = 0; i < 8; ++i) {
    a.Ldr(R6, R4, static_cast<int32_t>(i * 4));
    a.Str(R6, R7, static_cast<int32_t>(i * 4));
  }
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

std::vector<word> VerifyProgram() {
  Assembler a = NewAsm();
  // Copy 24 words (data, measurement, mac) from shared into the private page
  // first — verifying against insecure memory directly would be TOCTOU-prone.
  a.MovImm(R4, os::kEnclaveSharedVa);
  a.MovImm(R5, os::kEnclaveDataVa);
  for (word i = 0; i < 24; ++i) {
    a.Ldr(R6, R4, static_cast<int32_t>(i * 4));
    a.Str(R6, R5, static_cast<int32_t>(i * 4));
  }
  a.MovImm(R0, kSvcVerify);
  a.MovImm(R1, os::kEnclaveDataVa);       // data[8]
  a.MovImm(R2, os::kEnclaveDataVa + 32);  // measurement[8]
  a.MovImm(R3, os::kEnclaveDataVa + 64);  // mac[8]
  a.Svc();
  EmitExit(a, R1);  // ok flag
  return a.Finish();
}

std::vector<word> DynMemProgram() {
  Assembler a = NewAsm();
  constexpr vaddr kDynVa = 0x0003'0000;
  Assembler::Label fail1 = a.NewLabel();
  Assembler::Label fail2 = a.NewLabel();
  Assembler::Label fail3 = a.NewLabel();

  a.Mov(R7, R0);  // spare page number from arg1
  // MapData(spare, kDynVa RW)
  a.MovImm(R0, kSvcMapData);
  a.Mov(R1, R7);
  a.MovImm(R2, MakeMapping(kDynVa, kMapR | kMapW));
  a.Svc();
  a.Cmp(R0, 0u);
  a.B(fail1, Cond::kNe);
  // Write and read back a pattern.
  a.MovImm(R4, kDynVa);
  a.MovImm(R5, 0x5a5a0000);
  a.Orr(R5, R5, 0x33);
  a.Str(R5, R4, 64);
  a.Ldr(R6, R4, 64);
  a.Cmp(R5, R6);
  a.B(fail2, Cond::kNe);
  // UnmapData(page, mapping)
  a.MovImm(R0, kSvcUnmapData);
  a.Mov(R1, R7);
  a.MovImm(R2, MakeMapping(kDynVa, kMapR | kMapW));
  a.Svc();
  a.Cmp(R0, 0u);
  a.B(fail3, Cond::kNe);
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();

  a.Bind(fail1);
  a.MovImm(R1, 1);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  a.Bind(fail2);
  a.MovImm(R1, 2);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  a.Bind(fail3);
  a.MovImm(R1, 3);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

std::vector<word> RandomProgram() {
  Assembler a = NewAsm();
  a.MovImm(R7, os::kEnclaveSharedVa);
  for (word i = 0; i < 4; ++i) {
    a.MovImm(R0, kSvcGetRandom);
    a.Svc();
    a.Str(R1, R7, static_cast<int32_t>(i * 4));
  }
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

std::vector<word> LeakSecretProgram() {
  Assembler a = NewAsm();
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);  // the secret
  a.MovImm(R6, os::kEnclaveSharedVa);
  a.Str(R5, R6, 0);  // deliberately publish it
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

std::vector<word> ReadOutsideProgram() {
  Assembler a = NewAsm();
  a.MovImm(R4, 0x3f00'0000);  // inside the 1 GB window but unmapped
  a.Ldr(R5, R4, 0);
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

std::vector<word> WriteCodeProgram() {
  Assembler a = NewAsm();
  a.MovImm(R4, os::kEnclaveCodeVa);
  a.MovImm(R5, 0);
  a.Str(R5, R4, 0);  // code page is RX, not W — data abort
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

std::vector<word> UndefinedInsnProgram() {
  Assembler a = NewAsm();
  a.EmitWord(0xe7f0'00f0);  // permanently-undefined encoding space
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

}  // namespace komodo::enclave
