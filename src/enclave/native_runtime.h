// Native enclave programs: C++ code standing in for compiled enclave
// binaries, plugged into the monitor's user-execution hook.
//
// This mirrors the paper's own treatment of user-mode execution (§5.1): the
// hardware model does not interpret enclave instructions either — it models
// user execution as an arbitrary function of the user-visible state. A native
// program may only touch state a real enclave could (user registers and
// memory reachable through its page table, enforced here) and charges cycles
// for the work its compiled equivalent would do on the Cortex-A7.
#ifndef SRC_ENCLAVE_NATIVE_RUNTIME_H_
#define SRC_ENCLAVE_NATIVE_RUNTIME_H_

#include <map>
#include <memory>

#include "src/arm/execute.h"
#include "src/arm/machine.h"
#include "src/arm/page_table.h"
#include "src/core/kom_defs.h"
#include "src/core/monitor.h"

namespace komodo::enclave {

// The user-visible machine state, as a native program is allowed to see it.
class UserContext {
 public:
  explicit UserContext(arm::MachineState& m) : m_(m) {}

  word Reg(int i) const { return m_.r[i]; }
  void SetReg(int i, word v) { m_.r[i] = v; }

  // Word access through the enclave's page table with user permissions.
  // Returns false on a translation/permission failure (the program should
  // then fault). Charges one load/store.
  bool Read(vaddr va, word* out);
  bool Write(vaddr va, word value);
  // Bulk helpers; charge per word.
  bool ReadBytes(vaddr va, uint8_t* out, size_t len);
  bool WriteBytes(vaddr va, const uint8_t* data, size_t len);

  // Models computation the program performs between memory accesses.
  void ChargeCycles(uint64_t cycles) { m_.cycles.Charge(cycles); }

 private:
  arm::MachineState& m_;
};

// How a native program yields control (always via a real exception — the
// runtime raises it on the machine so the monitor's Figure 3 state machine
// runs unchanged).
struct UserAction {
  enum class Kind { kExit, kSvc, kFault };
  Kind kind = Kind::kExit;
  word svc_call = kSvcExit;
  word args[3] = {0, 0, 0};

  static UserAction Exit(word retval) {
    UserAction a;
    a.kind = Kind::kExit;
    a.svc_call = kSvcExit;
    a.args[0] = retval;
    return a;
  }
  static UserAction Svc(word call, word a1 = 0, word a2 = 0, word a3 = 0) {
    UserAction a;
    a.kind = Kind::kSvc;
    a.svc_call = call;
    a.args[0] = a1;
    a.args[1] = a2;
    a.args[2] = a3;
    return a;
  }
  static UserAction Fault() {
    UserAction a;
    a.kind = Kind::kFault;
    return a;
  }
};

class NativeProgram {
 public:
  virtual ~NativeProgram() = default;
  // Invoked whenever control enters user mode (initial entry, resume, or
  // return from an SVC — distinguish via internal state and the registers).
  virtual UserAction Run(UserContext& ctx) = 0;
};

// Dispatches user execution to the native program registered for the active
// address space (keyed by TTBR0, i.e. the enclave page-table base).
class NativeRuntime {
 public:
  // Installs this runtime as the monitor's user-execution engine.
  explicit NativeRuntime(Monitor& monitor);

  // Registers `program` for the enclave whose L1 table lives in `l1pt_page`.
  void Register(PageNr l1pt_page, std::shared_ptr<NativeProgram> program);

  arm::Exception RunUser(arm::MachineState& m);

 private:
  Monitor* monitor_;
  std::map<word, std::shared_ptr<NativeProgram>> programs_;  // by TTBR0 value
};

}  // namespace komodo::enclave

#endif  // SRC_ENCLAVE_NATIVE_RUNTIME_H_
