#include "src/enclave/sha256_program.h"

#include <cassert>

#include "src/arm/assembler.h"
#include "src/core/kom_defs.h"

namespace komodo::enclave {

using arm::Assembler;
using arm::Cond;
using arm::ShiftKind;
using namespace arm;  // register names

namespace {

constexpr uint32_t kH0[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

// Data-page layout (byte offsets from kEnclaveDataVa).
constexpr word kWBase = 0x000;      // W[0..63]
constexpr word kHBase = 0x100;      // running H[0..7]
constexpr word kLoopState = 0x120;  // +0: blocks left, +4: VA of current block

}  // namespace

std::vector<word> Sha256Program() {
  Assembler a(os::kEnclaveCodeVa);
  const vaddr data = os::kEnclaveDataVa;
  const vaddr shared = os::kEnclaveSharedVa;

  Assembler::Label start = a.NewLabel();
  Assembler::Label k_table = a.NewLabel();
  Assembler::Label h_table = a.NewLabel();

  // Constant tables live in the (read-only, executable) code page; jump over.
  a.B(start);
  a.Bind(k_table);
  for (uint32_t k : kK) {
    a.EmitWord(k);
  }
  a.Bind(h_table);
  for (uint32_t h : kH0) {
    a.EmitWord(h);
  }

  a.Bind(start);
  // r0 = nblocks (Enter arg1). Persist the block-loop state.
  a.MovImm(R9, data + kLoopState);
  a.Str(R0, R9, 0);                   // remaining = nblocks
  a.MovImm(R10, shared);
  a.Str(R10, R9, 4);                  // cur = first block

  // H = initial constants (copied from the code page).
  a.MovImm(R8, a.AddrOf(h_table));
  a.Ldmia(R8, 0x00ff);                // r0-r7 = H0..H7
  a.MovImm(R9, data + kHBase);
  a.Stmia(R9, 0x00ff);

  Assembler::Label block_loop = a.NewLabel();
  Assembler::Label finish = a.NewLabel();
  a.Bind(block_loop);
  a.MovImm(R9, data + kLoopState);
  a.Ldr(R0, R9, 0);
  a.Cmp(R0, 0u);
  a.B(finish, Cond::kEq);

  // --- Copy the 16 message words into W[0..15] -------------------------------
  a.Ldr(R1, R9, 4);   // r1 = current block VA
  a.MovImm(R8, data + kWBase);  // r8 = W base (constant for the whole block)
  a.MovImm(R11, 0);
  Assembler::Label copy16 = a.NewLabel();
  a.Bind(copy16);
  a.LdrReg(R10, R1, R11);
  a.StrReg(R10, R8, R11);
  a.Add(R11, R11, 4u);
  a.Cmp(R11, 64u);
  a.B(copy16, Cond::kNe);

  // --- Message schedule: W[t] = σ1(W[t-2]) + W[t-7] + σ0(W[t-15]) + W[t-16] ---
  Assembler::Label sched = a.NewLabel();
  a.Bind(sched);  // r11 = t*4, starts at 64
  a.Sub(R12, R11, 60u);        // &W[t-15]
  a.LdrReg(R9, R8, R12);
  a.Ror(R10, R9, 7);           // σ0 = ror7 ^ ror18 ^ shr3
  a.EorShifted(R10, R10, R9, ShiftKind::kRor, 18);
  a.EorShifted(R10, R10, R9, ShiftKind::kLsr, 3);
  a.Sub(R12, R11, 28u);        // + W[t-7]
  a.LdrReg(R9, R8, R12);
  a.Add(R10, R10, R9);
  a.Sub(R12, R11, 64u);        // + W[t-16]
  a.LdrReg(R9, R8, R12);
  a.Add(R10, R10, R9);
  a.Sub(R12, R11, 8u);         // σ1(W[t-2]) = ror17 ^ ror19 ^ shr10
  a.LdrReg(R9, R8, R12);
  a.Ror(R12, R9, 17);
  a.EorShifted(R12, R12, R9, ShiftKind::kRor, 19);
  a.EorShifted(R12, R12, R9, ShiftKind::kLsr, 10);
  a.Add(R10, R10, R12);
  a.StrReg(R10, R8, R11);
  a.Add(R11, R11, 4u);
  a.Cmp(R11, 256u);
  a.B(sched, Cond::kNe);

  // --- Compression: a..h in r0..r7, W base r8, K base sp, t*4 in r11 ----------
  a.MovImm(R9, data + kHBase);
  a.Ldmia(R9, 0x00ff);
  a.MovImm(SP, a.AddrOf(k_table));
  a.MovImm(R11, 0);
  Assembler::Label rounds = a.NewLabel();
  a.Bind(rounds);
  // T1 = h + Σ1(e) + Ch(e,f,g) + K[t] + W[t]          (e=r4 f=r5 g=r6 h=r7)
  a.Ror(R9, R4, 6);
  a.EorShifted(R9, R9, R4, ShiftKind::kRor, 11);
  a.EorShifted(R9, R9, R4, ShiftKind::kRor, 25);
  a.Add(R9, R9, R7);
  a.Eor(R10, R5, R6);          // Ch = g ^ (e & (f ^ g))
  a.And(R10, R4, R10);
  a.Eor(R10, R6, R10);
  a.Add(R9, R9, R10);
  a.LdrReg(R10, SP, R11);      // K[t]
  a.Add(R9, R9, R10);
  a.LdrReg(R10, R8, R11);      // W[t]
  a.Add(R9, R9, R10);          // r9 = T1
  // T2 = Σ0(a) + Maj(a,b,c); Maj's terms (a&b) and (c&(a^b)) are bitwise
  // disjoint, so plain additions compose them without carries.
  a.Ror(R10, R0, 2);
  a.EorShifted(R10, R10, R0, ShiftKind::kRor, 13);
  a.EorShifted(R10, R10, R0, ShiftKind::kRor, 22);
  a.Eor(R12, R0, R1);
  a.And(R12, R2, R12);
  a.Add(R10, R10, R12);
  a.And(R12, R0, R1);
  a.Add(R10, R10, R12);        // r10 = T2
  // Rotate the working variables.
  a.Mov(R7, R6);
  a.Mov(R6, R5);
  a.Mov(R5, R4);
  a.Add(R4, R3, R9);
  a.Mov(R3, R2);
  a.Mov(R2, R1);
  a.Mov(R1, R0);
  a.Add(R0, R9, R10);
  a.Add(R11, R11, 4u);
  a.Cmp(R11, 256u);
  a.B(rounds, Cond::kNe);

  // --- H += working variables ---------------------------------------------------
  a.MovImm(R12, data + kHBase);
  const Reg regs[8] = {R0, R1, R2, R3, R4, R5, R6, R7};
  for (int i = 0; i < 8; ++i) {
    a.Ldr(R9, R12, i * 4);
    a.Add(R9, R9, regs[i]);
    a.Str(R9, R12, i * 4);
  }

  // --- Next block -----------------------------------------------------------------
  a.MovImm(R9, data + kLoopState);
  a.Ldr(R10, R9, 0);
  a.Sub(R10, R10, 1u);
  a.Str(R10, R9, 0);
  a.Ldr(R10, R9, 4);
  a.Add(R10, R10, 64u);
  a.Str(R10, R9, 4);
  a.B(block_loop);

  // --- Publish the digest words and exit --------------------------------------------
  a.Bind(finish);
  a.MovImm(R9, data + kHBase);
  a.Ldmia(R9, 0x00ff);
  a.MovImm(R9, shared + kSha256ProgramDigestOffset);
  a.Stmia(R9, 0x00ff);
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

word StageSha256Message(os::Os& os, word shared_pg, const std::vector<uint8_t>& message) {
  // FIPS 180-4 padding: 0x80, zeros, 64-bit big-endian bit length.
  std::vector<uint8_t> padded = message;
  padded.push_back(0x80);
  while (padded.size() % 64 != 56) {
    padded.push_back(0);
  }
  const uint64_t bits = static_cast<uint64_t>(message.size()) * 8;
  for (int i = 7; i >= 0; --i) {
    padded.push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
  const word nblocks = static_cast<word>(padded.size() / 64);
  assert(nblocks <= kSha256ProgramMaxBlocks);
  // Stage as big-endian-converted words (the enclave computes on native
  // words; the byte-order flip is the driver's job, like the monitor's
  // block-alignment precondition in §7.2).
  for (word i = 0; i < padded.size() / 4; ++i) {
    const word be = (static_cast<word>(padded[i * 4]) << 24) |
                    (static_cast<word>(padded[i * 4 + 1]) << 16) |
                    (static_cast<word>(padded[i * 4 + 2]) << 8) | padded[i * 4 + 3];
    os.WriteInsecure(shared_pg, i, be);
  }
  return nblocks;
}

std::array<uint8_t, 32> ReadSha256Digest(os::Os& os, word shared_pg) {
  std::array<uint8_t, 32> digest;
  for (word i = 0; i < 8; ++i) {
    const word h = os.ReadInsecure(shared_pg, kSha256ProgramDigestOffset / 4 + i);
    digest[i * 4] = static_cast<uint8_t>(h >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(h >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(h >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(h);
  }
  return digest;
}

}  // namespace komodo::enclave
