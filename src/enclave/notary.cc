#include "src/enclave/notary.h"

#include "src/os/os.h"

namespace komodo::enclave {

NotaryCore::NotaryCore(uint64_t key_seed, const NotaryCosts& costs)
    : drbg_(key_seed), costs_(costs) {}

uint64_t NotaryCore::Init() {
  if (key_ready_) {
    return 0;
  }
  key_ = crypto::RsaGenerateKey(&drbg_, 1024);
  key_ready_ = true;
  counter_ = 0;
  return costs_.rsa_keygen_cycles;
}

std::vector<uint8_t> NotaryCore::Notarize(const uint8_t* doc, size_t len, uint64_t* cycles_out) {
  // message = document || counter (little-endian), as the Ironclad notary
  // hashes the document with the current counter value before signing.
  std::vector<uint8_t> message(doc, doc + len);
  message.push_back(static_cast<uint8_t>(counter_));
  message.push_back(static_cast<uint8_t>(counter_ >> 8));
  message.push_back(static_cast<uint8_t>(counter_ >> 16));
  message.push_back(static_cast<uint8_t>(counter_ >> 24));
  std::vector<uint8_t> sig = crypto::RsaSignSha256(key_, message.data(), message.size());
  ++counter_;
  *cycles_out = costs_.sha_cycles_per_byte * message.size() + costs_.rsa_sign_cycles;
  return sig;
}

UserAction NotaryProgram::Run(UserContext& ctx) {
  const word cmd = ctx.Reg(0);
  switch (cmd) {
    case kNotaryCmdInit: {
      ctx.ChargeCycles(core_.Init());
      // Publish the modulus to the shared page following the document region.
      const std::vector<uint8_t> n_bytes = core_.public_key().n.ToBytesBe(128);
      const vaddr out_va = os::kEnclaveSharedVa + kNotaryMaxDocBytes;
      if (!ctx.WriteBytes(out_va, n_bytes.data(), n_bytes.size())) {
        return UserAction::Fault();
      }
      return UserAction::Exit(0);
    }
    case kNotaryCmdNotarize: {
      const word len = ctx.Reg(1);
      if (len == 0 || len > kNotaryMaxDocBytes) {
        return UserAction::Exit(0);  // 0 = rejected (counters start at 1 below)
      }
      // Copy the document in through the enclave page table (the charged
      // loads model the enclave's copy-in of untrusted input).
      std::vector<uint8_t> doc(len);
      if (!ctx.ReadBytes(os::kEnclaveSharedVa, doc.data(), len)) {
        return UserAction::Fault();
      }
      uint64_t cycles = 0;
      const std::vector<uint8_t> sig = core_.Notarize(doc.data(), doc.size(), &cycles);
      ctx.ChargeCycles(cycles);
      const vaddr out_va = os::kEnclaveSharedVa + kNotaryMaxDocBytes + 1024;
      if (!ctx.WriteBytes(out_va, sig.data(), sig.size())) {
        return UserAction::Fault();
      }
      return UserAction::Exit(core_.counter());  // counter after increment >= 1
    }
    default:
      return UserAction::Exit(0);
  }
}

std::vector<uint8_t> NotaryNative::Notarize(const std::vector<uint8_t>& doc) {
  // A native process reads the document from its own memory: model the same
  // copy-in traffic with plain loads.
  cycles_ += doc.size() / 4 * arm::kCortexA7Costs.load;
  uint64_t work = 0;
  std::vector<uint8_t> sig = core_.Notarize(doc.data(), doc.size(), &work);
  cycles_ += work;
  return sig;
}

}  // namespace komodo::enclave
