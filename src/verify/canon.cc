#include "src/verify/canon.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/crypto/sha256.h"

namespace komodo::verify {

namespace {

using spec::AddrspacePage;
using spec::DataPage;
using spec::DispatcherPage;
using spec::InsecureMapping;
using spec::L1PTablePage;
using spec::L2PTablePage;
using spec::PageDb;
using spec::PageDbEntry;
using spec::SecureMapping;

// Remaps a page reference through the permutation; values outside the world
// (kInvalidPage owners, stale pointers) are preserved verbatim.
PageNr Map(const Perm& perm, PageNr n) {
  return n < perm.size() ? perm[n] : n;
}

void AppendNum(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llx", static_cast<unsigned long long>(v));
  out->append(buf);
}

// Serializes one page record under `perm`. `with_refs` distinguishes the full
// record (key material) from the permutation-invariant signature used to
// group interchangeable pages: the signature must not mention any page
// number, so it drops the owner and every cross-page reference while keeping
// reference-free structure (slot indices, permissions, contents).
void AppendRecord(std::string* out, const PageDb& d, PageNr n, const Perm& perm, bool with_refs) {
  const PageDbEntry& e = d[n];
  const auto ref = [&](PageNr r) {
    if (with_refs) {
      out->push_back(':');
      AppendNum(out, Map(perm, r));
    }
  };
  out->push_back('0' + static_cast<char>(e.type()));
  ref(e.owner);
  switch (e.type()) {
    case PageType::kFree:
    case PageType::kSparePage:
      break;
    case PageType::kAddrspace: {
      const AddrspacePage& as = e.As<AddrspacePage>();
      out->append("|as,");
      AppendNum(out, static_cast<word>(as.state));
      out->push_back(',');
      AppendNum(out, as.refcount);
      ref(as.l1pt_page);
      break;  // measurement_stream/measurement deliberately excluded
    }
    case PageType::kDispatcher: {
      const DispatcherPage& disp = e.As<DispatcherPage>();
      out->append("|d,");
      out->push_back(disp.entered ? '1' : '0');
      out->push_back(',');
      AppendNum(out, disp.entrypoint);
      for (word r : disp.regs) {
        out->push_back(',');
        AppendNum(out, r);
      }
      for (word r : {disp.sp, disp.lr, disp.pc, disp.psr}) {
        out->push_back(',');
        AppendNum(out, r);
      }
      break;
    }
    case PageType::kL1PTable: {
      const L1PTablePage& l1 = e.As<L1PTablePage>();
      out->append("|l1");
      for (word i = 0; i < l1.l2_tables.size(); ++i) {
        if (!l1.l2_tables[i].has_value()) {
          continue;
        }
        out->push_back(',');
        AppendNum(out, i);
        ref(*l1.l2_tables[i]);
      }
      break;
    }
    case PageType::kL2PTable: {
      const L2PTablePage& l2 = e.As<L2PTablePage>();
      out->append("|l2");
      for (word i = 0; i < l2.entries.size(); ++i) {
        if (const SecureMapping* sm = std::get_if<SecureMapping>(&l2.entries[i])) {
          out->push_back(',');
          AppendNum(out, i);
          out->push_back('s');
          out->push_back(sm->writable ? 'w' : '-');
          out->push_back(sm->executable ? 'x' : '-');
          ref(sm->data_page);
        } else if (const InsecureMapping* im = std::get_if<InsecureMapping>(&l2.entries[i])) {
          out->push_back(',');
          AppendNum(out, i);
          out->push_back('i');
          out->push_back(im->writable ? 'w' : '-');
          out->push_back('@');
          AppendNum(out, im->insecure_pgnr);  // not a secure page: never remapped
        }
      }
      break;
    }
    case PageType::kDataPage: {
      // Contents are permutation-invariant; hash them so data pages stay
      // cheap to compare and the key stays small.
      const DataPage& data = e.As<DataPage>();
      crypto::Sha256 h;
      for (word w : data.contents) {
        h.UpdateWordLe(w);
      }
      out->append("|data,");
      out->append(crypto::DigestToHex(h.Finalize()));
      break;
    }
  }
}

std::string SerializeUnder(const PageDb& d, const Perm& perm) {
  // Pages appear in their *new* (post-permutation) index order.
  std::vector<PageNr> old_of_new(d.NPages());
  for (PageNr n = 0; n < d.NPages(); ++n) {
    old_of_new[perm[n]] = n;
  }
  std::string out;
  out.reserve(64 * d.NPages());
  for (PageNr i = 0; i < d.NPages(); ++i) {
    AppendRecord(&out, d, old_of_new[i], perm, /*with_refs=*/true);
    out.push_back(';');
  }
  return out;
}

// Pages with identical reference-free signatures are interchangeable
// candidates; only permutations that keep each signature class together (with
// classes ordered by signature) can produce the minimal serialization,
// because the signature is a prefix of every page record.
struct SigClasses {
  // Page numbers grouped by signature, groups sorted by signature string.
  std::vector<std::vector<PageNr>> groups;
};

SigClasses ClassifyPages(const PageDb& d) {
  const Perm id;  // unused by signature records (no refs)
  std::vector<std::pair<std::string, PageNr>> sigs;
  sigs.reserve(d.NPages());
  for (PageNr n = 0; n < d.NPages(); ++n) {
    std::string s;
    AppendRecord(&s, d, n, id, /*with_refs=*/false);
    sigs.emplace_back(std::move(s), n);
  }
  std::sort(sigs.begin(), sigs.end());
  SigClasses out;
  for (size_t i = 0; i < sigs.size(); ++i) {
    if (i == 0 || sigs[i].first != sigs[i - 1].first) {
      out.groups.emplace_back();
    }
    out.groups.back().push_back(sigs[i].second);
  }
  return out;
}

// Invokes fn(perm) for every candidate permutation: each signature class is
// assigned a contiguous block of new indices (blocks in signature order) and
// all orderings within each class are enumerated.
template <typename Fn>
void ForEachCandidate(const SigClasses& classes, size_t npages, Fn&& fn) {
  std::vector<std::vector<PageNr>> orders = classes.groups;  // mutated in place
  Perm perm(npages);
  const auto emit = [&] {
    PageNr next = 0;
    for (const auto& group : orders) {
      for (PageNr old : group) {
        perm[old] = next++;
      }
    }
    fn(perm);
  };
  // Odometer over per-group permutations (each group's page list starts
  // sorted, so std::next_permutation cycles through all orderings).
  for (bool more = true; more;) {
    emit();
    more = false;
    for (auto& group : orders) {
      if (std::next_permutation(group.begin(), group.end())) {
        more = true;
        break;
      }
      // wrapped: group is sorted again, carry into the next group
    }
  }
}

struct CanonResult {
  std::string key;
  Perm perm;
};

CanonResult CanonicalForm(const PageDb& d) {
  const SigClasses classes = ClassifyPages(d);
  CanonResult best;
  ForEachCandidate(classes, d.NPages(), [&](const Perm& perm) {
    std::string s = SerializeUnder(d, perm);
    if (best.key.empty() || s < best.key) {
      best.key = std::move(s);
      best.perm = perm;
    }
  });
  if (best.perm.empty()) {  // zero-page world
    best.key = SerializeUnder(d, {});
  }
  return best;
}

}  // namespace

spec::PageDb ApplyPermutation(const spec::PageDb& d, const Perm& perm) {
  PageDb out(d.NPages());
  for (PageNr n = 0; n < d.NPages(); ++n) {
    PageDbEntry e = d[n];
    e.owner = Map(perm, e.owner);
    switch (e.type()) {
      case PageType::kAddrspace: {
        AddrspacePage& as = e.As<AddrspacePage>();
        as.l1pt_page = Map(perm, as.l1pt_page);
        break;
      }
      case PageType::kL1PTable: {
        L1PTablePage& l1 = e.As<L1PTablePage>();
        for (auto& slot : l1.l2_tables) {
          if (slot.has_value()) {
            slot = Map(perm, *slot);
          }
        }
        break;
      }
      case PageType::kL2PTable: {
        L2PTablePage& l2 = e.As<L2PTablePage>();
        for (auto& entry : l2.entries) {
          if (SecureMapping* sm = std::get_if<SecureMapping>(&entry)) {
            sm->data_page = Map(perm, sm->data_page);
          }
        }
        break;
      }
      default:
        break;
    }
    out[Map(perm, n)] = std::move(e);
  }
  return out;
}

std::string Serialize(const spec::PageDb& d) {
  Perm id(d.NPages());
  for (PageNr n = 0; n < d.NPages(); ++n) {
    id[n] = n;
  }
  return SerializeUnder(d, id);
}

std::string CanonicalKey(const spec::PageDb& d) { return CanonicalForm(d).key; }

spec::PageDb Canonicalize(const spec::PageDb& d) {
  const CanonResult best = CanonicalForm(d);
  if (best.perm.empty()) {
    return d;
  }
  return ApplyPermutation(d, best.perm);
}

}  // namespace komodo::verify
