// Per-transition proof obligations for the model checker (DESIGN.md §12).
//
// For one abstract state d and one call vector, three things must hold:
//   1. invariant preservation — when the spec's guard passes, the successor
//      PageDb has no PageDbViolations (checked on the spec output, so this is
//      an inductive proof over the explored world, not a sampled one);
//   2. refinement — the concrete monitor, run from a machine whose extraction
//      equals d, returns the spec's error word and lands on the spec's PageDb
//      (Enter/Resume and the user-memory SVCs are havoc-resynchronized the
//      same way the fuzzing oracles do);
//   3. error-code agreement — every error the implementation actually returns
//      is recorded so the explorer can compare the per-call observation
//      against the registry row's declared `errors` set.
//
// ConcreteWorld keeps obligation 2 affordable: it maintains a booted machine
// plus two incremental snapshots (post-boot, and post-replay "mid" state) so
// checking a transition costs a dirty-page reset instead of a reboot.
#ifndef SRC_VERIFY_OBLIGATIONS_H_
#define SRC_VERIFY_OBLIGATIONS_H_

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/fuzz/pool.h"
#include "src/os/world.h"
#include "src/spec/abstract_state.h"

namespace komodo::verify {

using arm::word;
using komodo::PageNr;

// Bounds of the explored world. `pages` secure pages; successors with more
// than `max_addrspaces` address-space pages are counted as clipped instead of
// enqueued (with the default 5-page world the cap is unreachable: two pages
// per addrspace already exhaust the world).
struct WorldSpec {
  word pages = 5;
  word max_addrspaces = 2;
  std::string inject;  // fuzz::SetInjectByName name, "" = clean monitor
};

// One transition label: an SMC issued by the OS, or an SVC issued on behalf
// of the (non-stopped) addrspace `as_page`. `irq` arms a pending interrupt
// before an Enter/Resume so the interrupted path is explored.
struct VerifyOp {
  bool is_svc = false;
  word call = 0;
  std::array<word, 4> args{};  // SVCs use args[0..2]
  PageNr as_page = kInvalidPage;
  bool irq = false;
};

// A booted world that can replay an op path from boot and then run many
// single-op probes from the resulting state, each undone by a dirty-page
// reset. Resets are incremental: a full machine copy is taken once at boot
// and once for the "mid" snapshot buffer; after that every path switch and
// probe costs only the pages actually written.
class ConcreteWorld {
 public:
  explicit ConcreteWorld(const WorldSpec& spec);

  // Boot-resets the machine, replays `path`, and captures the mid snapshot.
  // Must be called (with the state's path) before ResetToMid/RunStaged.
  void PreparePath(const std::vector<VerifyOp>& path);

  // Restores the machine to the prepared mid state (the abstract state under
  // test). Call before reading the machine for spec env or running an op.
  void ResetToMid();

  struct Outcome {
    word impl_err = 0;  // ABI error word the call returned
    word impl_val = 0;
    bool db_changed = false;              // any physical page was written
    std::optional<spec::PageDb> post;     // extraction, when db_changed
    std::string extract_error;            // non-empty: extraction failed
  };

  // Runs one op from the current machine state (caller must ResetToMid
  // first). Does not reset afterwards; the next ResetToMid undoes it.
  Outcome RunStaged(const VerifyOp& op);

  const arm::MachineState& machine() const { return world_.machine; }
  const spec::PageDb& boot_db() const { return boot_db_; }

 private:
  void MarkPages(arm::MachineState* m, const std::vector<uint32_t>& pages);
  void Execute(const VerifyOp& op, word* err, word* val);

  os::World world_;
  spec::PageDb boot_db_;
  std::unique_ptr<arm::MachineState> boot_;  // post-boot, dirty set empty
  std::unique_ptr<arm::MachineState> mid_;   // post-replay, refreshed per path
  std::vector<uint32_t> path_pages_;         // pages where mid_ differs from boot_
};

// Result of checking the three obligations for one transition.
struct ObligationResult {
  bool ok = true;
  std::string detail;                  // failure description when !ok
  word impl_err = 0;                   // for error-set accounting
  std::optional<spec::PageDb> successor;  // present iff the PageDb changed
};

// Checks one transition from abstract state `d` (the extraction of the
// prepared mid state). Resets the world to mid, evaluates the spec, runs the
// implementation and compares. `d` must equal the mid-state extraction.
ObligationResult CheckTransition(ConcreteWorld& world, const spec::PageDb& d,
                                 const VerifyOp& op);

}  // namespace komodo::verify

#endif  // SRC_VERIFY_OBLIGATIONS_H_
