// Symmetry canonicalization for the model checker (DESIGN.md §12).
//
// Secure page numbers are interchangeable: the monitor never computes with a
// page number except as an index, so any permutation of the secure pages maps
// reachable PageDbs to reachable PageDbs and spec transitions commute with the
// renaming. The explorer therefore identifies states up to page-number
// permutation, which collapses the bounded world's state count by up to n!.
//
// CanonicalKey(d) is the quotient map: a deterministic serialization that is
// equal for two PageDbs iff some permutation carries one onto the other —
// modulo the measurement fields (measurement_stream/measurement), which no
// guard or invariant reads and which would otherwise record the whole call
// history and defeat the quotient. The concrete refinement obligation still
// compares full PageDbs (including measurements) along each explored path.
#ifndef SRC_VERIFY_CANON_H_
#define SRC_VERIFY_CANON_H_

#include <string>
#include <vector>

#include "src/spec/abstract_state.h"

namespace komodo::verify {

using arm::word;
using komodo::PageNr;

// A permutation of secure page numbers: perm[old_page] == new_page.
using Perm = std::vector<PageNr>;

// Rebuilds `d` with every page moved to perm[n] and every page reference
// (owner, l1pt_page, L1 slots, secure L2 targets) rewritten through `perm`.
// References outside [0, NPages) — kInvalidPage owners, stale pointers wider
// than the world — pass through unchanged. Measurements move with their page.
spec::PageDb ApplyPermutation(const spec::PageDb& d, const Perm& perm);

// Deterministic serialization of `d` under the identity permutation, with the
// measurement fields quotiented out. Exposed for tests.
std::string Serialize(const spec::PageDb& d);

// The canonical (lexicographically minimal) serialization over all candidate
// permutations. Permutation-invariant: CanonicalKey(ApplyPermutation(d, p))
// == CanonicalKey(d) for any permutation p.
std::string CanonicalKey(const spec::PageDb& d);

// A representative of d's orbit whose Serialize() equals CanonicalKey(d).
// Idempotent up to measurements: Canonicalize(Canonicalize(d)) differs from
// Canonicalize(d) at most in fields the key excludes.
spec::PageDb Canonicalize(const spec::PageDb& d);

}  // namespace komodo::verify

#endif  // SRC_VERIFY_CANON_H_
