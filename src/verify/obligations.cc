#include "src/verify/obligations.h"

#include <utility>

#include "src/core/kom_defs.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"
#include "src/spec/spec_dispatch.h"

namespace komodo::verify {

namespace {

// Global page index (the dirty-list space: insecure, monitor, secure in
// layout order) back to the page's base physical address.
arm::paddr PageBaseOfIndex(uint32_t index) {
  constexpr uint32_t kInsecurePages = arm::kInsecureSize / arm::kPageSize;
  constexpr uint32_t kMonitorPages = arm::kMonitorSize / arm::kPageSize;
  if (index < kInsecurePages) {
    return arm::kInsecureBase + static_cast<arm::paddr>(index) * arm::kPageSize;
  }
  index -= kInsecurePages;
  if (index < kMonitorPages) {
    return arm::kMonitorBase + static_cast<arm::paddr>(index) * arm::kPageSize;
  }
  index -= kMonitorPages;
  return arm::kSecurePagesBase + static_cast<arm::paddr>(index) * arm::kPageSize;
}

ObligationResult FailOb(std::string detail, word impl_err) {
  ObligationResult res;
  res.ok = false;
  res.detail = std::move(detail);
  res.impl_err = impl_err;
  return res;
}

}  // namespace

ConcreteWorld::ConcreteWorld(const WorldSpec& spec)
    : world_(spec.pages, fuzz::FuzzMonitorConfig()), boot_db_(0) {
  world_.machine.mem.EnableDirtyTracking();
  boot_ = std::make_unique<arm::MachineState>(world_.machine);
  mid_ = std::make_unique<arm::MachineState>(world_.machine);
  boot_db_ = spec::ExtractPageDb(world_.machine);
}

void ConcreteWorld::MarkPages(arm::MachineState* m, const std::vector<uint32_t>& pages) {
  // Write-back marking: re-storing a word's own value records the page in
  // the dirty list (stores mark unconditionally) without changing contents,
  // which is exactly what ResetTo needs to know which pages to restore.
  for (uint32_t index : pages) {
    const arm::paddr base = PageBaseOfIndex(index);
    m->mem.Write(base, m->mem.Read(base));
  }
}

void ConcreteWorld::PreparePath(const std::vector<VerifyOp>& path) {
  // The live machine deviates from boot on the previous path's pages (not in
  // the dirty list any more — each mid-reset clears it) plus whatever the
  // last probe dirtied (still listed). Re-mark the former so the boot reset
  // restores both.
  MarkPages(&world_.machine, path_pages_);
  world_.machine.ResetTo(*boot_);
  world_.monitor.ResetForReuse();
  world_.os.ResetForReuse();

  for (const VerifyOp& op : path) {
    if (op.irq) {
      world_.machine.pending_irq = true;
    }
    word err = 0;
    word val = 0;
    Execute(op, &err, &val);
    world_.machine.pending_irq = false;
  }

  // Refresh the mid snapshot buffer: it still holds the previous path's
  // state, so it deviates from the live machine on the union of the old and
  // new path footprints.
  const std::vector<uint32_t> new_path = world_.machine.mem.dirty_pages();
  MarkPages(mid_.get(), path_pages_);
  MarkPages(mid_.get(), new_path);
  mid_->ResetTo(world_.machine);
  path_pages_ = new_path;
}

void ConcreteWorld::ResetToMid() { world_.machine.ResetTo(*mid_); }

void ConcreteWorld::Execute(const VerifyOp& op, word* err, word* val) {
  if (!op.is_svc) {
    const os::SmcRet r =
        world_.os.Smc(op.call, op.args[0], op.args[1], op.args[2], op.args[3]);
    *err = r.err;
    *val = r.val;
    return;
  }
  // The SVC handlers never dereference the dispatcher page and only consult
  // as_page, so driving DispatchSvc directly covers the production handler
  // code without constructing and entering a driver enclave (which would
  // change the world the checker is supposed to be exploring).
  Monitor::SvcCtx ctx;
  ctx.call = op.call;
  ctx.args = {op.args[0], op.args[1], op.args[2]};
  ctx.disp_page = kInvalidPage;
  ctx.as_page = op.as_page;
  const Monitor::SvcResult r = world_.monitor.DispatchSvc(ctx);
  *err = ToWord(r.err);
  *val = r.val;
}

ConcreteWorld::Outcome ConcreteWorld::RunStaged(const VerifyOp& op) {
  Outcome out;
  if (op.irq) {
    world_.machine.pending_irq = true;
  }
  Execute(op, &out.impl_err, &out.impl_val);
  world_.machine.pending_irq = false;  // an un-taken IRQ must not leak onward
  out.db_changed = !world_.machine.mem.dirty_pages().empty();
  if (out.db_changed) {
    spec::ExtractError xerr;
    std::optional<spec::PageDb> post = spec::TryExtractPageDb(world_.machine, &xerr);
    if (post.has_value()) {
      out.post = std::move(*post);
    } else {
      out.extract_error =
          "page " + std::to_string(xerr.page) + ": " + xerr.detail;
    }
  }
  return out;
}

ObligationResult CheckTransition(ConcreteWorld& world, const spec::PageDb& d,
                                 const VerifyOp& op) {
  world.ResetToMid();

  // Spec side first: ApplySmc reads the machine for the insecure-memory
  // environment, which must be sampled in the pre-state.
  spec::Result sres =
      op.is_svc
          ? spec::ApplySvc(d, op.as_page, op.call, {op.args[0], op.args[1], op.args[2]})
          : spec::ApplySmc(d, world.machine(), op.call, op.args);

  // Obligation 1: the spec preserves the PageDb validity invariants.
  if (sres.err == kErrSuccess) {
    const auto violations = spec::PageDbViolations(sres.db);
    if (!violations.empty()) {
      return FailOb("spec breaks invariant: " + violations.front(), kErrSuccess);
    }
  }

  // Obligation 2: the implementation refines the spec.
  ConcreteWorld::Outcome out = world.RunStaged(op);
  if (!out.extract_error.empty()) {
    return FailOb("extraction failed after impl call: " + out.extract_error, out.impl_err);
  }

  ObligationResult res;
  res.impl_err = out.impl_err;

  const bool enterish = !op.is_svc && (op.call == kSmcEnter || op.call == kSmcResume);
  const bool havoc_svc =
      op.is_svc && (op.call == kSvcExit || op.call == kSvcAttest || op.call == kSvcVerify);

  if (enterish && sres.err == kErrSuccess) {
    // The guard passed; user-mode execution is havoc in the spec. Accept any
    // legitimate outcome and resynchronize from the machine.
    if (out.impl_err != kErrSuccess && out.impl_err != kErrInterrupted &&
        out.impl_err != kErrFault) {
      return FailOb(std::string("enter/resume guard passed in spec but impl says ") +
                        KomErrName(out.impl_err),
                    out.impl_err);
    }
    res.successor = std::move(out.post);  // nullopt when nothing was written
  } else if (havoc_svc) {
    // Guard-only specs whose failures live in user-memory havoc (Attest and
    // Verify fault on bad virtual addresses; Exit cannot fail). The error
    // set is still pinned: the explorer compares every observed error
    // against the registry row, so an undeclared failure mode fails the run.
    res.successor = std::move(out.post);
  } else {
    if (out.impl_err != sres.err) {
      return FailOb(std::string(op.is_svc ? "svc" : "smc") + " " + std::to_string(op.call) +
                        " impl=" + KomErrName(out.impl_err) + " spec=" + KomErrName(sres.err),
                    out.impl_err);
    }
    if (sres.err == kErrSuccess) {
      const spec::PageDb& got = out.post.has_value() ? *out.post : d;
      if (!(got == sres.db)) {
        return FailOb(std::string(op.is_svc ? "svc" : "smc") + " " + std::to_string(op.call) +
                          " pagedb diverges from spec",
                      out.impl_err);
      }
      res.successor = std::move(sres.db);
    } else if (out.post.has_value() && !(*out.post == d)) {
      return FailOb(std::string(op.is_svc ? "svc" : "smc") + " " + std::to_string(op.call) +
                        " failed with " + KomErrName(out.impl_err) + " but mutated the pagedb",
                    out.impl_err);
    }
  }

  // Obligation 1 on the implementation side of havoc transitions: states we
  // resynchronized from the machine never went through the spec check above.
  if (res.successor.has_value()) {
    const auto violations = spec::PageDbViolations(*res.successor);
    if (!violations.empty()) {
      return FailOb("impl breaks invariant: " + violations.front(), out.impl_err);
    }
  }
  return res;
}

}  // namespace komodo::verify
