#include "src/verify/explore.h"

#include <deque>
#include <sstream>
#include <utility>

#include "src/core/call_table.h"
#include "src/core/kom_defs.h"
#include "src/crypto/sha256.h"
#include "src/fuzz/inject.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"
#include "src/verify/canon.h"

namespace komodo::verify {

namespace {

// ---------------------------------------------------------------------------
// Argument domains. One small value set per argument *name*, chosen so every
// guard clause in the specs is exercised: in-world pages (0..pages-1) plus
// one out-of-world probe; a valid and an out-of-range insecure page number;
// the zero (invalid) mapping plus valid mappings in two different L1 groups
// (group 1 makes pagetable_missing reachable when only group 0 has an L2
// table); L1 indices at both edges of the user range. Unrecognized names
// (entrypoints, enter arguments, SVC virtual addresses) pin to 0 — their
// values feed user-mode havoc, not the PageDb relation. Pinning the Attest/
// Verify VAs to 0 keeps their success path (which writes MACs into data
// pages) out of the explored space; the fuzzer covers it instead.
std::vector<word> DomainFor(const std::string& arg_name, word npages) {
  if (arg_name.find("pgnr") != std::string::npos) {
    const word insecure_pages = arm::kInsecureSize / arm::kPageSize;
    return {2, insecure_pages};
  }
  if (arg_name.find("page") != std::string::npos) {
    std::vector<word> d;
    for (word n = 0; n <= npages; ++n) {
      d.push_back(n);
    }
    return d;
  }
  if (arg_name.find("mapping") != std::string::npos) {
    return {0, MakeMapping(0x1000, kMapR | kMapW), MakeMapping(0x401000, kMapR | kMapW)};
  }
  if (arg_name.find("l1index") != std::string::npos) {
    return {0, 1, 256};
  }
  return {0};
}

std::vector<std::string> SplitNames(const char* arg_names) {
  std::vector<std::string> out;
  std::istringstream in(arg_names);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    const size_t a = tok.find_first_not_of(' ');
    const size_t b = tok.find_last_not_of(' ');
    if (a != std::string::npos) {
      out.push_back(tok.substr(a, b - a + 1));
    }
  }
  return out;
}

std::set<std::string> ParseDeclaredErrors(const char* errors) {
  std::set<std::string> out;
  if (std::string(errors) == "-") {
    return out;
  }
  std::istringstream in(errors);
  std::string tok;
  while (std::getline(in, tok, '|')) {
    if (!tok.empty()) {
      out.insert(tok);
    }
  }
  return out;
}

// All argument vectors of one registry row: the cross product of the
// per-argument domains (odometer), times {no-irq, irq} for Enter/Resume.
std::vector<VerifyOp> VectorsFor(const CallInfo& info, word npages) {
  std::vector<std::vector<word>> domains;
  for (const std::string& name : SplitNames(info.arg_names)) {
    domains.push_back(DomainFor(name, npages));
  }
  const bool enterish =
      info.kind == CallKind::kSmc && (info.number == kSmcEnter || info.number == kSmcResume);

  std::vector<VerifyOp> out;
  std::vector<size_t> idx(domains.size(), 0);
  for (bool more = true; more;) {
    VerifyOp op;
    op.is_svc = info.kind == CallKind::kSvc;
    op.call = info.number;
    for (size_t i = 0; i < domains.size(); ++i) {
      op.args[i] = domains[i][idx[i]];
    }
    out.push_back(op);
    if (enterish) {
      op.irq = true;
      out.push_back(op);
    }
    more = false;
    for (size_t i = 0; i < domains.size(); ++i) {
      if (++idx[i] < domains[i].size()) {
        more = true;
        break;
      }
      idx[i] = 0;
    }
  }
  return out;
}

// Addrspace pages an SVC can plausibly execute under: genuine, non-stopped
// address spaces in ascending order. Stopped addrspaces are excluded because
// their page tables may already be dismantled — neither the spec's SpecL2Slot
// nor the monitor's walker can decode them, and no production SVC can occur
// under one (SVCs only run inside an entered enclave, which requires Final).
std::vector<PageNr> SvcAddrspaces(const spec::PageDb& d) {
  std::vector<PageNr> out;
  for (PageNr n = 0; n < d.NPages(); ++n) {
    if (const auto* as = std::get_if<spec::AddrspacePage>(&d[n].page)) {
      if (as->state != AddrspaceState::kStopped) {
        out.push_back(n);
      }
    }
  }
  return out;
}

word CountAddrspaces(const spec::PageDb& d) {
  word count = 0;
  for (PageNr n = 0; n < d.NPages(); ++n) {
    if (spec::IsAddrspace(d, n)) {
      ++count;
    }
  }
  return count;
}

struct State {
  std::vector<VerifyOp> path;
  spec::PageDb db;
};

Counterexample MakeWitness(const WorldSpec& spec, const std::vector<VerifyOp>& path,
                           const VerifyOp& failing, std::string detail) {
  Counterexample cex;
  cex.detail = std::move(detail);
  cex.depth = path.size() + 1;
  cex.trace.oracle = "refinement";
  cex.trace.seed = 0;
  cex.trace.pages = spec.pages;
  cex.trace.inject = spec.inject;
  cex.exact_replay = true;
  const auto append = [&](const VerifyOp& op) {
    fuzz::TraceOp top;
    top.kind = op.is_svc ? fuzz::OpKind::kSvc : fuzz::OpKind::kSmc;
    top.a[0] = op.call;
    for (size_t i = 0; i < 4; ++i) {
      top.a[i + 1] = op.args[i];
    }
    cex.trace.ops.push_back(top);
    // The fuzzer replays SMCs verbatim but has no pending-IRQ scheduling and
    // drives SVCs through a driver enclave (extra setup ops), so only
    // all-SMC, no-IRQ witnesses replay the exact sequence.
    if (op.is_svc || op.irq) {
      cex.exact_replay = false;
    }
  };
  for (const VerifyOp& op : path) {
    append(op);
  }
  append(failing);
  return cex;
}

}  // namespace

ExploreResult Explore(const WorldSpec& spec) {
  ExploreResult result;
  if (!spec.inject.empty()) {
    bool known = spec.inject == "none";
    for (const char* name : fuzz::kInjectNames) {
      known = known || spec.inject == name;
    }
    if (!known) {
      result.harness_error = "unknown inject name: " + spec.inject;
      return result;
    }
  }
  fuzz::ScopedInject scoped_inject(spec.inject);

  // Registry-driven call plan, fixed for the whole run.
  struct PlannedCall {
    const CallInfo* info;
    std::vector<VerifyOp> vectors;  // as_page filled per state for SVCs
    size_t stats_index;
  };
  std::vector<PlannedCall> plan;
  for (const CallInfo& info : kSmcCalls) {
    plan.push_back({&info, VectorsFor(info, spec.pages), plan.size()});
  }
  for (const CallInfo& info : kSvcCalls) {
    plan.push_back({&info, VectorsFor(info, spec.pages), plan.size()});
  }
  for (const PlannedCall& pc : plan) {
    CallStats stats;
    stats.name = pc.info->name;
    stats.number = pc.info->number;
    stats.is_svc = pc.info->kind == CallKind::kSvc;
    stats.vectors = pc.vectors.size();
    stats.declared = ParseDeclaredErrors(pc.info->errors);
    result.calls.push_back(std::move(stats));
  }

  ConcreteWorld world(spec);

  const auto boot_violations = spec::PageDbViolations(world.boot_db());
  if (!boot_violations.empty()) {
    result.harness_error = "boot state breaks invariant: " + boot_violations.front();
    return result;
  }

  std::set<std::string> visited;
  std::set<std::string> clipped_keys;
  std::deque<State> frontier;
  visited.insert(CanonicalKey(world.boot_db()));
  frontier.push_back(State{{}, world.boot_db()});

  while (!frontier.empty()) {
    State st = std::move(frontier.front());
    frontier.pop_front();

    world.PreparePath(st.path);

    // Harness sanity: the replayed machine must extract to exactly the
    // abstract state we are about to reason over, or every conclusion below
    // would be about a different state than the one recorded.
    {
      world.ResetToMid();
      std::optional<spec::PageDb> mid = spec::TryExtractPageDb(world.machine());
      if (!mid.has_value() || !(*mid == st.db)) {
        result.harness_error =
            "mid-state extraction diverges from the explored abstract state "
            "(path depth " +
            std::to_string(st.path.size()) + ")";
        return result;
      }
    }

    const std::vector<PageNr> as_pages = SvcAddrspaces(st.db);

    for (const PlannedCall& pc : plan) {
      CallStats& stats = result.calls[pc.stats_index];
      for (const VerifyOp& proto : pc.vectors) {
        // SMCs run once; SVCs run once per candidate issuing addrspace.
        const size_t variants = pc.info->kind == CallKind::kSvc ? as_pages.size() : 1;
        for (size_t v = 0; v < variants; ++v) {
          VerifyOp op = proto;
          if (op.is_svc) {
            op.as_page = as_pages[v];
          }

          const ObligationResult res = CheckTransition(world, st.db, op);
          ++result.transitions;
          ++stats.transitions;
          if (!res.ok) {
            result.failure = MakeWitness(spec, st.path, op, res.detail);
            return result;
          }

          // Obligation 3: every error the implementation actually returns
          // must be declared in the registry row.
          if (res.impl_err != kErrSuccess) {
            const std::string err_name = KomErrName(res.impl_err);
            stats.errors.insert(err_name);
            if (stats.declared.find(err_name) == stats.declared.end()) {
              result.failure = MakeWitness(
                  spec, st.path, op,
                  std::string(stats.name) + " returned undeclared error " + err_name);
              return result;
            }
          }

          if (!res.successor.has_value()) {
            continue;
          }
          std::string key = CanonicalKey(*res.successor);
          if (CountAddrspaces(*res.successor) > spec.max_addrspaces) {
            if (clipped_keys.insert(std::move(key)).second) {
              ++result.clipped;
            }
            continue;
          }
          if (visited.insert(key).second) {
            State next;
            next.path = st.path;
            next.path.push_back(op);
            next.db = std::move(*res.successor);
            frontier.push_back(std::move(next));
          }
        }
      }
    }
  }

  result.states = visited.size();
  crypto::Sha256 h;
  for (const std::string& key : visited) {
    h.Update(reinterpret_cast<const uint8_t*>(key.data()), key.size());
    const uint8_t nl = '\n';
    h.Update(&nl, 1);
  }
  result.closure_hash = crypto::DigestToHex(h.Finalize());
  result.ok = true;
  return result;
}

}  // namespace komodo::verify
