// Exhaustive small-world exploration (DESIGN.md §12): BFS over every
// reachable abstract PageDb of a bounded world, checking the three
// obligations of obligations.h for every registry call with every canonical
// argument vector at every state. The call list and argument domains are
// derived from src/core/call_table.h, so a new KOM_SMC/KOM_SVC row enters the
// checked space without touching this file.
#ifndef SRC_VERIFY_EXPLORE_H_
#define SRC_VERIFY_EXPLORE_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/fuzz/trace.h"
#include "src/verify/obligations.h"

namespace komodo::verify {

// Per-registry-row accounting, used both for the report and for the
// error-set cross-check (every observed error must be declared in the row's
// `errors` column, and the registry test requires the converse in the small
// world: every declared error is actually observable).
struct CallStats {
  std::string name;
  word number = 0;
  bool is_svc = false;
  uint64_t vectors = 0;      // argument vectors enumerated per state
  uint64_t transitions = 0;  // (state, vector) pairs actually checked
  std::set<std::string> errors;  // observed non-success KomErrName()s
  std::set<std::string> declared;  // parsed from the registry row
};

// A counterexample: the failing transition's obligation detail plus a replay
// trace (path from boot + failing op) in komodo-fuzz-trace format.
// `exact_replay` is true when komodo-fuzz --replay reproduces the exact op
// sequence (all-SMC, no pending-IRQ ops — the fuzzer has no IRQ scheduling
// or direct SVC driving, so other witnesses document the path instead).
struct Counterexample {
  std::string detail;
  fuzz::Trace trace;
  bool exact_replay = false;
  size_t depth = 0;  // ops from boot, including the failing one
};

struct ExploreResult {
  bool ok = false;
  // Non-empty when the harness itself is broken (mid-state extraction
  // disagrees with the abstract state being explored) — distinct from an
  // obligation failure, which produces `failure` instead.
  std::string harness_error;
  uint64_t states = 0;       // distinct canonical states closed over
  uint64_t transitions = 0;  // obligation-checked (state, vector) pairs
  uint64_t clipped = 0;      // successors outside the world bound
  std::vector<CallStats> calls;  // registry order, SMCs then SVCs
  // SHA-256 over the sorted canonical keys of the closed state space;
  // deterministic across runs, sanitizers and hosts.
  std::string closure_hash;
  std::optional<Counterexample> failure;
};

// Runs the exploration to closure (or first failure) under the world bounds.
// `spec.inject` arms a fuzz::inject fault for the duration of the run.
ExploreResult Explore(const WorldSpec& spec);

}  // namespace komodo::verify

#endif  // SRC_VERIFY_EXPLORE_H_
