#include "src/sgx/sgx_model.h"

namespace komodo::sgx {

SgxMachine::SgxMachine(word epc_pages, const SgxCosts& costs)
    : costs_(costs),
      epcm_(epc_pages),
      secs_(epc_pages),
      contents_(epc_pages),
      tcs_entered_flag_(epc_pages, false),
      blocked_epoch_(epc_pages, 0) {}

SgxStatus SgxMachine::Ecreate(word secs_page) {
  cycles_ += costs_.ecreate;
  if (!ValidPage(secs_page)) {
    return SgxStatus::kInvalidPage;
  }
  if (epcm_[secs_page].valid) {
    return SgxStatus::kPageInUse;
  }
  epcm_[secs_page] = EpcmEntry{true, EpcmType::kSecs, secs_page, 0, false, false, false, false,
                               false};
  secs_[secs_page] = SecsState{};
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Eadd(word secs_page, word page, word linaddr, bool w, bool x, EpcmType type,
                           const std::array<uint8_t, kSgxPageBytes>& contents) {
  cycles_ += costs_.eadd;
  if (!IsSecs(secs_page) || !ValidPage(page)) {
    return SgxStatus::kInvalidPage;
  }
  if (secs_[secs_page].initialised) {
    return SgxStatus::kAlreadyInitialised;
  }
  if (epcm_[page].valid) {
    return SgxStatus::kPageInUse;
  }
  if (type != EpcmType::kReg && type != EpcmType::kTcs) {
    return SgxStatus::kInvalidPage;
  }
  if ((linaddr & (kSgxPageBytes - 1)) != 0) {
    return SgxStatus::kInvalidLinaddr;
  }
  epcm_[page] = EpcmEntry{true, type, secs_page, linaddr, true, w, x, false, false};
  contents_[page] = contents;
  // EADD measures the page's metadata (address, type, perms); contents are
  // covered by subsequent EEXTENDs.
  crypto::Sha256& stream = secs_[secs_page].mrenclave_stream;
  stream.UpdateWordLe(0x44444145);  // "EADD"
  stream.UpdateWordLe(linaddr);
  stream.UpdateWordLe(static_cast<word>(type) | (w ? 0x100u : 0) | (x ? 0x200u : 0));
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Eextend(word secs_page, word page, word chunk_offset) {
  cycles_ += costs_.eextend_per_chunk;
  if (!IsSecs(secs_page) || !ValidPage(page) || !epcm_[page].valid ||
      epcm_[page].secs != secs_page) {
    return SgxStatus::kInvalidPage;
  }
  if (secs_[secs_page].initialised) {
    return SgxStatus::kAlreadyInitialised;
  }
  if (chunk_offset % kEextendChunk != 0 || chunk_offset >= kSgxPageBytes) {
    return SgxStatus::kInvalidLinaddr;
  }
  crypto::Sha256& stream = secs_[secs_page].mrenclave_stream;
  stream.UpdateWordLe(0x44545845);  // "EXTD"
  stream.UpdateWordLe(epcm_[page].linaddr + chunk_offset);
  stream.Update(contents_[page].data() + chunk_offset, kEextendChunk);
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Einit(word secs_page) {
  cycles_ += costs_.einit;
  if (!IsSecs(secs_page)) {
    return SgxStatus::kInvalidSecs;
  }
  if (secs_[secs_page].initialised) {
    return SgxStatus::kAlreadyInitialised;
  }
  crypto::Sha256 stream = secs_[secs_page].mrenclave_stream;  // copy, keep stream intact
  secs_[secs_page].mrenclave = stream.Finalize();
  secs_[secs_page].initialised = true;
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Eenter(word tcs_page) {
  cycles_ += costs_.eenter;
  if (!ValidPage(tcs_page) || !epcm_[tcs_page].valid || epcm_[tcs_page].type != EpcmType::kTcs) {
    return SgxStatus::kInvalidPage;
  }
  const word secs_page = epcm_[tcs_page].secs;
  if (!secs_[secs_page].initialised) {
    return SgxStatus::kNotInitialised;
  }
  if (tcs_entered_flag_[tcs_page]) {
    return SgxStatus::kEntryInProgress;
  }
  tcs_entered_flag_[tcs_page] = true;
  secs_[secs_page].tcs_entered += 1;
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Eresume(word tcs_page) {
  cycles_ += costs_.eresume;
  if (!ValidPage(tcs_page) || !epcm_[tcs_page].valid || epcm_[tcs_page].type != EpcmType::kTcs) {
    return SgxStatus::kInvalidPage;
  }
  if (tcs_entered_flag_[tcs_page]) {
    return SgxStatus::kEntryInProgress;
  }
  tcs_entered_flag_[tcs_page] = true;
  secs_[epcm_[tcs_page].secs].tcs_entered += 1;
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Eexit(word tcs_page) {
  cycles_ += costs_.eexit;
  if (!ValidPage(tcs_page) || !tcs_entered_flag_[tcs_page]) {
    return SgxStatus::kNotEntered;
  }
  tcs_entered_flag_[tcs_page] = false;
  secs_[epcm_[tcs_page].secs].tcs_entered -= 1;
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Aex(word tcs_page) {
  cycles_ += costs_.aex;
  if (!ValidPage(tcs_page) || !tcs_entered_flag_[tcs_page]) {
    return SgxStatus::kNotEntered;
  }
  tcs_entered_flag_[tcs_page] = false;
  secs_[epcm_[tcs_page].secs].tcs_entered -= 1;
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Eaug(word secs_page, word page, word linaddr) {
  cycles_ += costs_.eaug;
  if (!IsSecs(secs_page) || !ValidPage(page)) {
    return SgxStatus::kInvalidPage;
  }
  if (!secs_[secs_page].initialised) {
    return SgxStatus::kNotInitialised;  // SGXv2: EAUG only after EINIT
  }
  if (epcm_[page].valid) {
    return SgxStatus::kPageInUse;
  }
  if ((linaddr & (kSgxPageBytes - 1)) != 0) {
    return SgxStatus::kInvalidLinaddr;
  }
  epcm_[page] = EpcmEntry{true, EpcmType::kReg, secs_page, linaddr, true, true, false,
                          /*pending=*/true, false};
  contents_[page] = {};  // zero-filled
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Eaccept(word page, word linaddr, bool w, bool x) {
  cycles_ += costs_.eaccept;
  if (!ValidPage(page) || !epcm_[page].valid) {
    return SgxStatus::kInvalidPage;
  }
  if (!epcm_[page].pending) {
    return SgxStatus::kNotPending;
  }
  if (epcm_[page].linaddr != linaddr) {
    return SgxStatus::kInvalidLinaddr;
  }
  // The enclave must accept exactly the OS-chosen permissions or weaker —
  // this is the side channel §4 notes Komodo avoids: the OS picked them.
  if ((w && !epcm_[page].w) || (x && !epcm_[page].x)) {
    return SgxStatus::kPermMismatch;
  }
  epcm_[page].pending = false;
  epcm_[page].w = w;
  epcm_[page].x = x;
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Eremove(word page) {
  cycles_ += costs_.eremove;
  if (!ValidPage(page) || !epcm_[page].valid) {
    return SgxStatus::kInvalidPage;
  }
  if (epcm_[page].type == EpcmType::kSecs) {
    // A SECS is removable only when no child pages remain.
    for (word p = 0; p < epcm_.size(); ++p) {
      if (p != page && epcm_[p].valid && epcm_[p].secs == page) {
        return SgxStatus::kPageInUse;
      }
    }
  } else if (epcm_[page].type == EpcmType::kTcs && tcs_entered_flag_[page]) {
    return SgxStatus::kEntryInProgress;
  }
  epcm_[page] = EpcmEntry{};
  contents_[page] = {};
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Eblock(word page) {
  cycles_ += costs_.eblock;
  if (!ValidPage(page) || !epcm_[page].valid || epcm_[page].type == EpcmType::kSecs) {
    return SgxStatus::kInvalidPage;
  }
  if (epcm_[page].blocked) {
    return SgxStatus::kPageBlocked;
  }
  epcm_[page].blocked = true;
  blocked_epoch_[page] = secs_[epcm_[page].secs].epoch;
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Etrack(word secs_page) {
  cycles_ += costs_.etrack;
  if (!IsSecs(secs_page)) {
    return SgxStatus::kInvalidSecs;
  }
  // Real hardware requires all logical processors to leave the enclave before
  // the epoch can advance; single-core here, so entered-count must be zero.
  if (secs_[secs_page].tcs_entered != 0) {
    return SgxStatus::kEntryInProgress;
  }
  secs_[secs_page].epoch += 1;
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Ewb(word page, std::vector<uint8_t>* encrypted_out) {
  cycles_ += costs_.ewb;
  if (!ValidPage(page) || !epcm_[page].valid) {
    return SgxStatus::kInvalidPage;
  }
  if (!epcm_[page].blocked) {
    return SgxStatus::kNotBlocked;
  }
  // The TLB-shootdown protocol (§2): an ETRACK epoch must have completed
  // since this page was blocked.
  if (secs_[epcm_[page].secs].epoch <= blocked_epoch_[page]) {
    return SgxStatus::kNotTracked;
  }
  // "Encryption": versioned serialisation with an integrity tag stand-in.
  encrypted_out->assign(contents_[page].begin(), contents_[page].end());
  const crypto::Digest tag = crypto::Sha256Hash(encrypted_out->data(), encrypted_out->size());
  encrypted_out->insert(encrypted_out->end(), tag.begin(), tag.end());
  epcm_[page] = EpcmEntry{};
  contents_[page] = {};
  return SgxStatus::kOk;
}

SgxStatus SgxMachine::Eldu(word secs_page, word page, word linaddr,
                           const std::vector<uint8_t>& blob) {
  cycles_ += costs_.eldu;
  if (!IsSecs(secs_page) || !ValidPage(page)) {
    return SgxStatus::kInvalidPage;
  }
  if (epcm_[page].valid) {
    return SgxStatus::kPageInUse;
  }
  if (blob.size() != kSgxPageBytes + crypto::kSha256DigestBytes) {
    return SgxStatus::kInvalidLinaddr;
  }
  const crypto::Digest tag = crypto::Sha256Hash(blob.data(), kSgxPageBytes);
  if (!crypto::ConstantTimeEqual(tag.data(), blob.data() + kSgxPageBytes, tag.size())) {
    return SgxStatus::kInvalidLinaddr;
  }
  epcm_[page] = EpcmEntry{true, EpcmType::kReg, secs_page, linaddr, true, true, false, false,
                          false};
  std::copy(blob.begin(), blob.begin() + kSgxPageBytes, contents_[page].begin());
  return SgxStatus::kOk;
}

}  // namespace komodo::sgx
