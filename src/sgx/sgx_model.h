// Functional model of Intel SGX's enclave instructions (§2), the baseline the
// paper compares against. Implements the EPCM state machine for SGXv1
// construction/execution plus the SGXv2 dynamic-memory instructions
// (EAUG/EACCEPT/EMODT semantics simplified to the paths the paper discusses),
// with a microcode-flow cycle model calibrated to published latencies:
// EENTER ≈ 3,800 and EEXIT ≈ 3,300 cycles (Orenbach et al. [66], quoted in
// §8.1), scaled to a common cycle unit with the Komodo numbers.
#ifndef SRC_SGX_SGX_MODEL_H_
#define SRC_SGX_SGX_MODEL_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/crypto/sha256.h"

namespace komodo::sgx {

using word = uint32_t;

inline constexpr word kSgxPageBytes = 4096;
inline constexpr word kEextendChunk = 256;

enum class SgxStatus : word {
  kOk = 0,
  kInvalidPage,
  kPageInUse,
  kInvalidSecs,
  kAlreadyInitialised,
  kNotInitialised,
  kInvalidLinaddr,
  kNotPending,
  kPermMismatch,
  kEntryInProgress,
  kNotEntered,
  kPageBlocked,
  kNotBlocked,
  kNotTracked,
};

enum class EpcmType : uint8_t { kFree, kSecs, kTcs, kReg, kTrim };

// One EPCM entry (§2): the hardware's reverse map of encrypted pages.
struct EpcmEntry {
  bool valid = false;
  EpcmType type = EpcmType::kFree;
  word secs = ~0u;      // owning enclave, as the SECS page index
  word linaddr = 0;     // enclave-virtual address this page backs
  bool r = false, w = false, x = false;
  bool pending = false;  // EAUG'd, awaiting EACCEPT
  bool blocked = false;  // EBLOCK'd, awaiting EWB
};

// SECS-side per-enclave state.
struct SecsState {
  bool initialised = false;
  crypto::Sha256 mrenclave_stream;
  crypto::Digest mrenclave{};
  word tcs_entered = 0;  // count of TCSes currently executing
  uint64_t epoch = 0;    // ETRACK epoch counter for TLB-shootdown validation
};

// Cycle costs of the microcode flows (common unit with the Komodo model).
struct SgxCosts {
  uint64_t ecreate = 10'000;
  uint64_t eadd = 10'500;
  uint64_t eextend_per_chunk = 3'250;  // per 256 B
  uint64_t einit = 60'000;             // launch-token checks, key derivation
  uint64_t eenter = 3'800;             // Orenbach et al. [66]
  uint64_t eexit = 3'300;              // Orenbach et al. [66]
  uint64_t eresume = 3'800;
  uint64_t aex = 3'300;
  uint64_t eaug = 10'200;
  uint64_t eaccept = 3'800;
  uint64_t eremove = 1'300;
  uint64_t eblock = 1'600;
  uint64_t etrack = 1'200;
  uint64_t ewb = 25'000;   // encrypt + MAC a page out
  uint64_t eldu = 25'000;  // decrypt + verify a page in
};

class SgxMachine {
 public:
  explicit SgxMachine(word epc_pages = 256, const SgxCosts& costs = SgxCosts{});

  // --- SGXv1 construction -----------------------------------------------------
  SgxStatus Ecreate(word secs_page);
  SgxStatus Eadd(word secs_page, word page, word linaddr, bool w, bool x, EpcmType type,
                 const std::array<uint8_t, kSgxPageBytes>& contents);
  SgxStatus Eextend(word secs_page, word page, word chunk_offset);
  SgxStatus Einit(word secs_page);

  // --- Execution ----------------------------------------------------------------
  SgxStatus Eenter(word tcs_page);
  SgxStatus Eresume(word tcs_page);
  SgxStatus Eexit(word tcs_page);
  SgxStatus Aex(word tcs_page);  // asynchronous exit (interrupt)

  // --- SGXv2 dynamic memory --------------------------------------------------------
  SgxStatus Eaug(word secs_page, word page, word linaddr);
  SgxStatus Eaccept(word page, word linaddr, bool w, bool x);  // from inside

  // --- Deallocation and paging --------------------------------------------------------
  SgxStatus Eremove(word page);
  SgxStatus Eblock(word page);
  SgxStatus Etrack(word secs_page);
  // EWB requires an ETRACK epoch to have elapsed since the EBLOCK.
  SgxStatus Ewb(word page, std::vector<uint8_t>* encrypted_out);
  SgxStatus Eldu(word secs_page, word page, word linaddr, const std::vector<uint8_t>& blob);

  const EpcmEntry& Epcm(word page) const { return epcm_[page]; }
  const SecsState& Secs(word secs_page) const { return secs_[secs_page]; }
  crypto::Digest Mrenclave(word secs_page) const { return secs_[secs_page].mrenclave; }

  uint64_t cycles() const { return cycles_; }
  void ResetCycles() { cycles_ = 0; }
  word epc_pages() const { return static_cast<word>(epcm_.size()); }

 private:
  bool ValidPage(word page) const { return page < epcm_.size(); }
  bool IsSecs(word page) const {
    return ValidPage(page) && epcm_[page].valid && epcm_[page].type == EpcmType::kSecs;
  }

  SgxCosts costs_;
  uint64_t cycles_ = 0;
  std::vector<EpcmEntry> epcm_;
  std::vector<SecsState> secs_;  // indexed by page; meaningful for SECS pages
  std::vector<std::array<uint8_t, kSgxPageBytes>> contents_;
  std::vector<bool> tcs_entered_flag_;  // per TCS page
  std::vector<uint64_t> blocked_epoch_;  // epoch at EBLOCK time, per page
};

}  // namespace komodo::sgx

#endif  // SRC_SGX_SGX_MODEL_H_
