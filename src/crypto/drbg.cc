#include "src/crypto/drbg.h"

#include <cstring>

namespace komodo::crypto {

HashDrbg::HashDrbg(uint64_t seed) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(seed >> (8 * i));
  }
  v_ = Sha256Hash(bytes, sizeof(bytes));
}

HashDrbg::HashDrbg(const std::vector<uint8_t>& seed_material) {
  v_ = Sha256Hash(seed_material);
}

void HashDrbg::Reseed() {
  Sha256 h;
  h.Update(v_.data(), v_.size());
  uint8_t ctr[8];
  for (int i = 0; i < 8; ++i) {
    ctr[i] = static_cast<uint8_t>(counter_ >> (8 * i));
  }
  h.Update(ctr, sizeof(ctr));
  block_ = h.Finalize();
  ++counter_;
  block_used_ = 0;
}

void HashDrbg::Fill(uint8_t* out, size_t len) {
  while (len > 0) {
    if (block_used_ == kSha256DigestBytes) {
      Reseed();
    }
    const size_t take = std::min(len, kSha256DigestBytes - block_used_);
    std::memcpy(out, block_.data() + block_used_, take);
    block_used_ += take;
    out += take;
    len -= take;
  }
}

uint32_t HashDrbg::NextWord() {
  uint8_t bytes[4];
  Fill(bytes, sizeof(bytes));
  return static_cast<uint32_t>(bytes[0]) | (static_cast<uint32_t>(bytes[1]) << 8) |
         (static_cast<uint32_t>(bytes[2]) << 16) | (static_cast<uint32_t>(bytes[3]) << 24);
}

uint64_t HashDrbg::NextU64() {
  return static_cast<uint64_t>(NextWord()) | (static_cast<uint64_t>(NextWord()) << 32);
}

std::vector<uint8_t> HashDrbg::Bytes(size_t len) {
  std::vector<uint8_t> out(len);
  Fill(out.data(), len);
  return out;
}

uint32_t HashDrbg::Below(uint32_t bound) {
  const uint32_t limit = 0xffff'ffffu - (0xffff'ffffu % bound) - 1;
  uint32_t x;
  do {
    x = NextWord();
  } while (x > limit);
  return x % bound;
}

}  // namespace komodo::crypto
