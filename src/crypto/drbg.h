// Deterministic random bit generator (Hash_DRBG-style over SHA-256).
//
// Models the paper's hardware requirement of a cryptographically secure
// randomness source (§3.2): on the Raspberry Pi 2 this was the SoC RNG; here
// the "hardware entropy" is a seed supplied by the simulated bootloader, so
// every run — and thus every test and benchmark — is reproducible.
#ifndef SRC_CRYPTO_DRBG_H_
#define SRC_CRYPTO_DRBG_H_

#include <cstdint>
#include <vector>

#include "src/crypto/sha256.h"

namespace komodo::crypto {

class HashDrbg {
 public:
  explicit HashDrbg(uint64_t seed);
  explicit HashDrbg(const std::vector<uint8_t>& seed_material);

  uint32_t NextWord();
  uint64_t NextU64();
  void Fill(uint8_t* out, size_t len);
  std::vector<uint8_t> Bytes(size_t len);

  // Uniform value in [0, bound) by rejection sampling; bound must be nonzero.
  uint32_t Below(uint32_t bound);

 private:
  void Reseed();

  Digest v_{};
  uint64_t counter_ = 0;
  Digest block_{};
  size_t block_used_ = kSha256DigestBytes;  // force generation on first use
};

}  // namespace komodo::crypto

#endif  // SRC_CRYPTO_DRBG_H_
