// Arbitrary-precision unsigned integers, sized for RSA-1024 (the notary
// workload of §8.2). 32-bit limbs, little-endian limb order. Only the
// operations RSA needs are provided; everything is deterministic and
// allocation-light but not constant-time (the notary is an example
// application, not part of the monitor's TCB).
#ifndef SRC_CRYPTO_BIGNUM_H_
#define SRC_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/crypto/drbg.h"

namespace komodo::crypto {

class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(uint64_t value);
  // Big-endian byte import/export (network order, as PKCS#1 uses).
  static BigNum FromBytesBe(const std::vector<uint8_t>& bytes);
  std::vector<uint8_t> ToBytesBe(size_t min_len = 0) const;
  static BigNum FromHex(const std::string& hex);
  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t BitLength() const;
  bool Bit(size_t i) const;

  static int Compare(const BigNum& a, const BigNum& b);
  bool operator==(const BigNum& o) const { return Compare(*this, o) == 0; }
  bool operator<(const BigNum& o) const { return Compare(*this, o) < 0; }
  bool operator<=(const BigNum& o) const { return Compare(*this, o) <= 0; }
  bool operator>(const BigNum& o) const { return Compare(*this, o) > 0; }
  bool operator>=(const BigNum& o) const { return Compare(*this, o) >= 0; }

  static BigNum Add(const BigNum& a, const BigNum& b);
  // Requires a >= b.
  static BigNum Sub(const BigNum& a, const BigNum& b);
  static BigNum Mul(const BigNum& a, const BigNum& b);
  // Requires divisor != 0.
  static void DivMod(const BigNum& a, const BigNum& d, BigNum* quotient, BigNum* remainder);
  static BigNum Mod(const BigNum& a, const BigNum& m);

  static BigNum ShiftLeft(const BigNum& a, size_t bits);
  static BigNum ShiftRight(const BigNum& a, size_t bits);

  // (a * b) mod m and a^e mod m (square-and-multiply).
  static BigNum MulMod(const BigNum& a, const BigNum& b, const BigNum& m);
  static BigNum ModExp(const BigNum& base, const BigNum& exp, const BigNum& m);

  static BigNum Gcd(BigNum a, BigNum b);
  // Modular inverse of a mod m; returns false if gcd(a, m) != 1.
  static bool ModInverse(const BigNum& a, const BigNum& m, BigNum* inverse);

  // Uniform value with exactly `bits` bits (top bit set), low bit forced odd
  // when `odd` — the prime-candidate generator.
  static BigNum Random(HashDrbg* drbg, size_t bits, bool odd);
  // Miller-Rabin with `rounds` random bases.
  static bool IsProbablePrime(const BigNum& n, HashDrbg* drbg, int rounds = 24);
  // Next prime with exactly `bits` bits from the DRBG stream.
  static BigNum GeneratePrime(HashDrbg* drbg, size_t bits);

  uint64_t ToU64() const;  // low 64 bits

 private:
  void Trim();
  static BigNum FromLimbs(std::vector<uint32_t> limbs);

  std::vector<uint32_t> limbs_;  // little-endian, no trailing zero limbs
};

}  // namespace komodo::crypto

#endif  // SRC_CRYPTO_BIGNUM_H_
