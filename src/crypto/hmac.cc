#include "src/crypto/hmac.h"

namespace komodo::crypto {

namespace {

void StartInner(Sha256* inner, const HmacKey& key) {
  uint8_t ipad[kSha256BlockBytes];
  for (size_t i = 0; i < kSha256BlockBytes; ++i) {
    ipad[i] = (i < kHmacKeyBytes) ? static_cast<uint8_t>(key[i] ^ 0x36) : 0x36;
  }
  inner->Reset();
  inner->Update(ipad, sizeof(ipad));
}

Digest FinishOuter(const HmacKey& key, const Digest& inner_digest) {
  uint8_t opad[kSha256BlockBytes];
  for (size_t i = 0; i < kSha256BlockBytes; ++i) {
    opad[i] = (i < kHmacKeyBytes) ? static_cast<uint8_t>(key[i] ^ 0x5c) : 0x5c;
  }
  Sha256 outer;
  outer.Update(opad, sizeof(opad));
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finalize();
}

}  // namespace

Digest HmacSha256(const HmacKey& key, const uint8_t* data, size_t len) {
  Sha256 inner;
  StartInner(&inner, key);
  inner.Update(data, len);
  return FinishOuter(key, inner.Finalize());
}

Digest HmacSha256(const HmacKey& key, const std::vector<uint8_t>& data) {
  return HmacSha256(key, data.data(), data.size());
}

HmacSha256Stream::HmacSha256Stream(const HmacKey& key) : key_(key) {
  StartInner(&inner_, key_);
}

void HmacSha256Stream::Update(const uint8_t* data, size_t len) { inner_.Update(data, len); }

Digest HmacSha256Stream::Finalize() { return FinishOuter(key_, inner_.Finalize()); }

}  // namespace komodo::crypto
