#include "src/crypto/bignum.h"

#include <algorithm>
#include <cassert>

namespace komodo::crypto {

void BigNum::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigNum BigNum::FromLimbs(std::vector<uint32_t> limbs) {
  BigNum n;
  n.limbs_ = std::move(limbs);
  n.Trim();
  return n;
}

BigNum::BigNum(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value));
    if (value >> 32) {
      limbs_.push_back(static_cast<uint32_t>(value >> 32));
    }
  }
}

BigNum BigNum::FromBytesBe(const std::vector<uint8_t>& bytes) {
  BigNum n;
  for (uint8_t b : bytes) {
    n = ShiftLeft(n, 8);
    if (b != 0 || !n.limbs_.empty()) {
      if (n.limbs_.empty()) {
        n.limbs_.push_back(b);
      } else {
        n.limbs_[0] |= b;
      }
    }
  }
  n.Trim();
  return n;
}

std::vector<uint8_t> BigNum::ToBytesBe(size_t min_len) const {
  std::vector<uint8_t> out;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint32_t limb = limbs_[i];
    out.push_back(static_cast<uint8_t>(limb));
    out.push_back(static_cast<uint8_t>(limb >> 8));
    out.push_back(static_cast<uint8_t>(limb >> 16));
    out.push_back(static_cast<uint8_t>(limb >> 24));
  }
  while (!out.empty() && out.back() == 0) {
    out.pop_back();
  }
  while (out.size() < min_len) {
    out.push_back(0);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

BigNum BigNum::FromHex(const std::string& hex) {
  BigNum n;
  for (char c : hex) {
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      continue;
    }
    n = ShiftLeft(n, 4);
    if (digit != 0) {
      if (n.limbs_.empty()) {
        n.limbs_.push_back(digit);
      } else {
        n.limbs_[0] |= digit;
      }
    }
  }
  n.Trim();
  return n;
}

std::string BigNum::ToHex() const {
  if (limbs_.empty()) {
    return "0";
  }
  static const char* kHex = "0123456789abcdef";
  std::string s;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      s += kHex[(limbs_[i] >> shift) & 0xf];
    }
  }
  const size_t nonzero = s.find_first_not_of('0');
  return s.substr(nonzero);
}

size_t BigNum::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  size_t bits = (limbs_.size() - 1) * 32;
  uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigNum::Bit(size_t i) const {
  const size_t limb = i / 32;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigNum::Compare(const BigNum& a, const BigNum& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigNum BigNum::Add(const BigNum& a, const BigNum& b) {
  std::vector<uint32_t> out(std::max(a.limbs_.size(), b.limbs_.size()) + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) {
      sum += a.limbs_[i];
    }
    if (i < b.limbs_.size()) {
      sum += b.limbs_[i];
    }
    out[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  return FromLimbs(std::move(out));
}

BigNum BigNum::Sub(const BigNum& a, const BigNum& b) {
  assert(Compare(a, b) >= 0);
  std::vector<uint32_t> out(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) {
      diff -= b.limbs_[i];
    }
    if (diff < 0) {
      diff += int64_t{1} << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<uint32_t>(diff);
  }
  assert(borrow == 0);
  return FromLimbs(std::move(out));
}

BigNum BigNum::Mul(const BigNum& a, const BigNum& b) {
  if (a.IsZero() || b.IsZero()) {
    return BigNum();
  }
  std::vector<uint32_t> out(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      const uint64_t cur = static_cast<uint64_t>(a.limbs_[i]) * b.limbs_[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.limbs_.size();
    while (carry != 0) {
      const uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  return FromLimbs(std::move(out));
}

BigNum BigNum::ShiftLeft(const BigNum& a, size_t bits) {
  if (a.IsZero() || bits == 0) {
    return a;
  }
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  std::vector<uint32_t> out(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    const uint64_t v = static_cast<uint64_t>(a.limbs_[i]) << bit_shift;
    out[i + limb_shift] |= static_cast<uint32_t>(v);
    out[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  return FromLimbs(std::move(out));
}

BigNum BigNum::ShiftRight(const BigNum& a, size_t bits) {
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  if (limb_shift >= a.limbs_.size()) {
    return BigNum();
  }
  std::vector<uint32_t> out(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    uint64_t v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<uint64_t>(a.limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out[i] = static_cast<uint32_t>(v);
  }
  return FromLimbs(std::move(out));
}

void BigNum::DivMod(const BigNum& a, const BigNum& d, BigNum* quotient, BigNum* remainder) {
  assert(!d.IsZero());
  if (Compare(a, d) < 0) {
    if (quotient != nullptr) {
      *quotient = BigNum();
    }
    if (remainder != nullptr) {
      *remainder = a;
    }
    return;
  }

  // Single-limb divisor: straightforward long division.
  if (d.limbs_.size() == 1) {
    const uint64_t divisor = d.limbs_[0];
    std::vector<uint32_t> q_limbs(a.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      const uint64_t cur = (rem << 32) | a.limbs_[i];
      q_limbs[i] = static_cast<uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    if (quotient != nullptr) {
      *quotient = FromLimbs(std::move(q_limbs));
    }
    if (remainder != nullptr) {
      *remainder = BigNum(rem);
    }
    return;
  }

  // Knuth TAOCP vol. 2, algorithm D (base 2^32).
  const size_t n = d.limbs_.size();
  const size_t m = a.limbs_.size() - n;

  // D1: normalise so the divisor's top limb has its high bit set.
  unsigned shift = 0;
  {
    uint32_t top = d.limbs_.back();
    while ((top & 0x8000'0000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  std::vector<uint32_t> u(a.limbs_.size() + 1, 0);
  std::vector<uint32_t> v(n, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    u[i] = a.limbs_[i] << shift;
    if (shift != 0 && i > 0) {
      u[i] |= static_cast<uint32_t>(static_cast<uint64_t>(a.limbs_[i - 1]) >> (32 - shift));
    }
  }
  if (shift != 0) {
    u[a.limbs_.size()] =
        static_cast<uint32_t>(static_cast<uint64_t>(a.limbs_.back()) >> (32 - shift));
  }
  for (size_t i = 0; i < n; ++i) {
    v[i] = d.limbs_[i] << shift;
    if (shift != 0 && i > 0) {
      v[i] |= static_cast<uint32_t>(static_cast<uint64_t>(d.limbs_[i - 1]) >> (32 - shift));
    }
  }

  std::vector<uint32_t> q_limbs(m + 1, 0);
  const uint64_t base = uint64_t{1} << 32;

  for (size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat from the top two limbs.
    const uint64_t top2 = (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t qhat = top2 / v[n - 1];
    uint64_t rhat = top2 % v[n - 1];
    while (qhat >= base ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= base) {
        break;
      }
    }

    // D4: multiply-subtract u[j..j+n] -= qhat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      const int64_t diff = static_cast<int64_t>(u[i + j]) -
                           static_cast<int64_t>(product & 0xffff'ffffu) - borrow;
      u[i + j] = static_cast<uint32_t>(diff);
      borrow = diff < 0 ? 1 : 0;
    }
    const int64_t diff =
        static_cast<int64_t>(u[j + n]) - static_cast<int64_t>(carry) - borrow;
    u[j + n] = static_cast<uint32_t>(diff);

    // D5/D6: qhat was one too large — add v back.
    if (diff < 0) {
      --qhat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<uint32_t>(sum);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<uint32_t>(u[j + n] + add_carry);
    }
    q_limbs[j] = static_cast<uint32_t>(qhat);
  }

  if (quotient != nullptr) {
    *quotient = FromLimbs(std::move(q_limbs));
  }
  if (remainder != nullptr) {
    // D8: denormalise the first n limbs of u.
    std::vector<uint32_t> r_limbs(n, 0);
    for (size_t i = 0; i < n; ++i) {
      r_limbs[i] = u[i] >> shift;
      if (shift != 0 && i + 1 < n + 1) {
        r_limbs[i] |= static_cast<uint32_t>(static_cast<uint64_t>(u[i + 1]) << (32 - shift));
      }
    }
    *remainder = FromLimbs(std::move(r_limbs));
  }
}

BigNum BigNum::Mod(const BigNum& a, const BigNum& m) {
  BigNum r;
  DivMod(a, m, nullptr, &r);
  return r;
}

BigNum BigNum::MulMod(const BigNum& a, const BigNum& b, const BigNum& m) {
  return Mod(Mul(a, b), m);
}

BigNum BigNum::ModExp(const BigNum& base, const BigNum& exp, const BigNum& m) {
  assert(!m.IsZero());
  BigNum result(1);
  BigNum acc = Mod(base, m);
  const size_t nbits = exp.BitLength();
  for (size_t i = 0; i < nbits; ++i) {
    if (exp.Bit(i)) {
      result = MulMod(result, acc, m);
    }
    if (i + 1 < nbits) {
      acc = MulMod(acc, acc, m);
    }
  }
  return result;
}

BigNum BigNum::Gcd(BigNum a, BigNum b) {
  while (!b.IsZero()) {
    BigNum r = Mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

bool BigNum::ModInverse(const BigNum& a, const BigNum& m, BigNum* inverse) {
  // Extended Euclid over non-negative values, tracking signs separately.
  BigNum old_r = Mod(a, m);
  BigNum r = m;
  BigNum old_s(1);
  BigNum s;
  bool old_s_neg = false;
  bool s_neg = false;

  while (!r.IsZero()) {
    BigNum q;
    BigNum rem;
    DivMod(old_r, r, &q, &rem);

    // (old_s, s) = (s, old_s - q*s) with sign tracking.
    BigNum qs = Mul(q, s);
    BigNum new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      if (Compare(old_s, qs) >= 0) {
        new_s = Sub(old_s, qs);
        new_s_neg = old_s_neg;
      } else {
        new_s = Sub(qs, old_s);
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = Add(old_s, qs);
      new_s_neg = old_s_neg;
    }
    old_s = std::move(s);
    old_s_neg = s_neg;
    s = std::move(new_s);
    s_neg = new_s_neg;

    old_r = std::move(r);
    r = std::move(rem);
  }

  if (!(old_r == BigNum(1))) {
    return false;
  }
  if (old_s_neg) {
    *inverse = Sub(m, Mod(old_s, m));
  } else {
    *inverse = Mod(old_s, m);
  }
  return true;
}

BigNum BigNum::Random(HashDrbg* drbg, size_t bits, bool odd) {
  assert(bits >= 2);
  std::vector<uint32_t> limbs((bits + 31) / 32, 0);
  for (uint32_t& limb : limbs) {
    limb = drbg->NextWord();
  }
  // Mask to exactly `bits` bits and force the top bit.
  const size_t top_bit = (bits - 1) % 32;
  limbs.back() &= (top_bit == 31) ? 0xffff'ffffu : ((1u << (top_bit + 1)) - 1);
  limbs.back() |= 1u << top_bit;
  if (odd) {
    limbs[0] |= 1;
  }
  return FromLimbs(std::move(limbs));
}

bool BigNum::IsProbablePrime(const BigNum& n, HashDrbg* drbg, int rounds) {
  if (n < BigNum(2)) {
    return false;
  }
  static const uint32_t kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37,
                                          41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97};
  for (uint32_t p : kSmallPrimes) {
    const BigNum bp(p);
    if (n == bp) {
      return true;
    }
    if (Mod(n, bp).IsZero()) {
      return false;
    }
  }
  // n - 1 = d * 2^s with d odd.
  const BigNum n_minus_1 = Sub(n, BigNum(1));
  BigNum d = n_minus_1;
  size_t s = 0;
  while (!d.IsOdd()) {
    d = ShiftRight(d, 1);
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    BigNum a = Add(Mod(Random(drbg, n.BitLength(), false), Sub(n, BigNum(3))), BigNum(2));
    BigNum x = ModExp(a, d, n);
    if (x == BigNum(1) || x == n_minus_1) {
      continue;
    }
    bool witness = true;
    for (size_t i = 0; i + 1 < s; ++i) {
      x = MulMod(x, x, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) {
      return false;
    }
  }
  return true;
}

BigNum BigNum::GeneratePrime(HashDrbg* drbg, size_t bits) {
  for (;;) {
    BigNum candidate = Random(drbg, bits, /*odd=*/true);
    if (IsProbablePrime(candidate, drbg)) {
      return candidate;
    }
  }
}

uint64_t BigNum::ToU64() const {
  uint64_t v = 0;
  if (!limbs_.empty()) {
    v = limbs_[0];
  }
  if (limbs_.size() > 1) {
    v |= static_cast<uint64_t>(limbs_[1]) << 32;
  }
  return v;
}

}  // namespace komodo::crypto
