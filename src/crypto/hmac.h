// HMAC-SHA256 (RFC 2104 / FIPS 198-1): the attestation MAC of §4. Also used
// to derive the monitor's boot-time attestation key.
#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/crypto/sha256.h"

namespace komodo::crypto {

inline constexpr size_t kHmacKeyBytes = 32;
using HmacKey = std::array<uint8_t, kHmacKeyBytes>;

Digest HmacSha256(const HmacKey& key, const uint8_t* data, size_t len);
Digest HmacSha256(const HmacKey& key, const std::vector<uint8_t>& data);

// Incremental form for the monitor's block-aligned MAC computation.
class HmacSha256Stream {
 public:
  explicit HmacSha256Stream(const HmacKey& key);
  void Update(const uint8_t* data, size_t len);
  void UpdateWordLe(uint32_t w) { inner_.UpdateWordLe(w); }
  Digest Finalize();

  uint64_t total_bytes() const { return inner_.total_bytes(); }

 private:
  HmacKey key_;
  Sha256 inner_;
};

}  // namespace komodo::crypto

#endif  // SRC_CRYPTO_HMAC_H_
