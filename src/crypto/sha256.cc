#include "src/crypto/sha256.h"

#include <cstring>

namespace komodo::crypto {

namespace {

constexpr uint32_t kInitState[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                                    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

inline uint32_t Rotr(uint32_t x, unsigned n) { return (x >> n) | (x << (32 - n)); }
inline uint32_t Ch(uint32_t x, uint32_t y, uint32_t z) { return (x & y) ^ (~x & z); }
inline uint32_t Maj(uint32_t x, uint32_t y, uint32_t z) { return (x & y) ^ (x & z) ^ (y & z); }
inline uint32_t BigSigma0(uint32_t x) { return Rotr(x, 2) ^ Rotr(x, 13) ^ Rotr(x, 22); }
inline uint32_t BigSigma1(uint32_t x) { return Rotr(x, 6) ^ Rotr(x, 11) ^ Rotr(x, 25); }
inline uint32_t SmallSigma0(uint32_t x) { return Rotr(x, 7) ^ Rotr(x, 18) ^ (x >> 3); }
inline uint32_t SmallSigma1(uint32_t x) { return Rotr(x, 17) ^ Rotr(x, 19) ^ (x >> 10); }

}  // namespace

void Sha256::Reset() {
  std::memcpy(state_.data(), kInitState, sizeof(kInitState));
  // Zeroed so Export() is a pure function of the absorbed input (the
  // refinement tests compare serialised streams bit-for-bit).
  std::memset(buffer_, 0, sizeof(buffer_));
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha256::Compress(const uint8_t block[kSha256BlockBytes]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) | block[i * 4 + 3];
  }
  for (int i = 16; i < 64; ++i) {
    w[i] = SmallSigma1(w[i - 2]) + w[i - 7] + SmallSigma0(w[i - 15]) + w[i - 16];
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const uint32_t t1 = h + BigSigma1(e) + Ch(e, f, g) + kRoundConstants[i] + w[i];
    const uint32_t t2 = BigSigma0(a) + Maj(a, b, c);
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  while (len > 0) {
    const size_t take = std::min(len, kSha256BlockBytes - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == kSha256BlockBytes) {
      Compress(buffer_);
      buffer_len_ = 0;
    }
  }
}

void Sha256::UpdateWordLe(uint32_t w) {
  const uint8_t bytes[4] = {static_cast<uint8_t>(w), static_cast<uint8_t>(w >> 8),
                            static_cast<uint8_t>(w >> 16), static_cast<uint8_t>(w >> 24)};
  Update(bytes, 4);
}

Digest Sha256::Finalize() {
  const uint64_t bit_len = total_len_ * 8;
  const uint8_t pad = 0x80;
  Update(&pad, 1);
  const uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(len_bytes, 8);

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

std::array<uint32_t, Sha256::kExportWords> Sha256::Export() const {
  std::array<uint32_t, kExportWords> out{};
  for (int i = 0; i < 8; ++i) {
    out[i] = state_[i];
  }
  for (int i = 0; i < 16; ++i) {
    out[8 + i] = (static_cast<uint32_t>(buffer_[i * 4])) |
                 (static_cast<uint32_t>(buffer_[i * 4 + 1]) << 8) |
                 (static_cast<uint32_t>(buffer_[i * 4 + 2]) << 16) |
                 (static_cast<uint32_t>(buffer_[i * 4 + 3]) << 24);
  }
  out[24] = static_cast<uint32_t>(buffer_len_);
  out[25] = static_cast<uint32_t>(total_len_);
  out[26] = static_cast<uint32_t>(total_len_ >> 32);
  return out;
}

void Sha256::Import(const std::array<uint32_t, kExportWords>& words) {
  for (int i = 0; i < 8; ++i) {
    state_[i] = words[i];
  }
  for (int i = 0; i < 16; ++i) {
    buffer_[i * 4] = static_cast<uint8_t>(words[8 + i]);
    buffer_[i * 4 + 1] = static_cast<uint8_t>(words[8 + i] >> 8);
    buffer_[i * 4 + 2] = static_cast<uint8_t>(words[8 + i] >> 16);
    buffer_[i * 4 + 3] = static_cast<uint8_t>(words[8 + i] >> 24);
  }
  buffer_len_ = words[24];
  total_len_ = static_cast<uint64_t>(words[25]) | (static_cast<uint64_t>(words[26]) << 32);
}

DigestWords Sha256::StateWords() const {
  DigestWords w;
  for (int i = 0; i < 8; ++i) {
    w[i] = state_[i];
  }
  return w;
}

Digest Sha256Hash(const uint8_t* data, size_t len) {
  Sha256 h;
  h.Update(data, len);
  return h.Finalize();
}

Digest Sha256Hash(const std::vector<uint8_t>& data) { return Sha256Hash(data.data(), data.size()); }

DigestWords DigestToWords(const Digest& d) {
  DigestWords w;
  for (int i = 0; i < 8; ++i) {
    w[i] = (static_cast<uint32_t>(d[i * 4]) << 24) | (static_cast<uint32_t>(d[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(d[i * 4 + 2]) << 8) | d[i * 4 + 3];
  }
  return w;
}

Digest WordsToDigest(const DigestWords& w) {
  Digest d;
  for (int i = 0; i < 8; ++i) {
    d[i * 4] = static_cast<uint8_t>(w[i] >> 24);
    d[i * 4 + 1] = static_cast<uint8_t>(w[i] >> 16);
    d[i * 4 + 2] = static_cast<uint8_t>(w[i] >> 8);
    d[i * 4 + 3] = static_cast<uint8_t>(w[i]);
  }
  return d;
}

std::string DigestToHex(const Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string s;
  s.reserve(kSha256DigestBytes * 2);
  for (uint8_t b : d) {
    s += kHex[b >> 4];
    s += kHex[b & 0xf];
  }
  return s;
}

bool ConstantTimeEqual(const uint8_t* a, const uint8_t* b, size_t len) {
  uint8_t acc = 0;
  for (size_t i = 0; i < len; ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

}  // namespace komodo::crypto
