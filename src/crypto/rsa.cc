#include "src/crypto/rsa.h"

#include <cassert>

namespace komodo::crypto {

namespace {

// DER-encoded DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
constexpr uint8_t kSha256DigestInfoPrefix[] = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60,
                                               0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02,
                                               0x01, 0x05, 0x00, 0x04, 0x20};

}  // namespace

RsaKeyPair RsaGenerateKey(HashDrbg* drbg, size_t bits) {
  assert(bits >= 128 && bits % 2 == 0);
  const BigNum e(65537);
  for (;;) {
    const BigNum p = BigNum::GeneratePrime(drbg, bits / 2);
    const BigNum q = BigNum::GeneratePrime(drbg, bits / 2);
    if (p == q) {
      continue;
    }
    const BigNum n = BigNum::Mul(p, q);
    if (n.BitLength() != bits) {
      continue;
    }
    const BigNum phi =
        BigNum::Mul(BigNum::Sub(p, BigNum(1)), BigNum::Sub(q, BigNum(1)));
    BigNum d;
    if (!BigNum::ModInverse(e, phi, &d)) {
      continue;
    }
    RsaKeyPair key;
    key.pub.n = n;
    key.pub.e = e;
    key.d = d;
    key.p = p;
    key.q = q;
    key.dp = BigNum::Mod(d, BigNum::Sub(p, BigNum(1)));
    key.dq = BigNum::Mod(d, BigNum::Sub(q, BigNum(1)));
    key.has_crt = BigNum::ModInverse(q, p, &key.qinv);
    return key;
  }
}

BigNum RsaPrivateOp(const RsaKeyPair& key, const BigNum& m) {
  if (!key.has_crt) {
    return BigNum::ModExp(m, key.d, key.pub.n);
  }
  // Garner's recombination: s = m2 + q * ((qinv * (m1 - m2)) mod p).
  const BigNum m1 = BigNum::ModExp(BigNum::Mod(m, key.p), key.dp, key.p);
  const BigNum m2 = BigNum::ModExp(BigNum::Mod(m, key.q), key.dq, key.q);
  const BigNum m2_mod_p = BigNum::Mod(m2, key.p);
  const BigNum diff = (BigNum::Compare(m1, m2_mod_p) >= 0)
                          ? BigNum::Sub(m1, m2_mod_p)
                          : BigNum::Sub(BigNum::Add(m1, key.p), m2_mod_p);
  const BigNum h = BigNum::MulMod(key.qinv, diff, key.p);
  return BigNum::Add(m2, BigNum::Mul(h, key.q));
}

std::vector<uint8_t> Pkcs1V15EncodeSha256(const Digest& digest, size_t em_len) {
  const size_t t_len = sizeof(kSha256DigestInfoPrefix) + digest.size();
  assert(em_len >= t_len + 11);
  std::vector<uint8_t> em(em_len);
  em[0] = 0x00;
  em[1] = 0x01;
  const size_t ps_len = em_len - t_len - 3;
  for (size_t i = 0; i < ps_len; ++i) {
    em[2 + i] = 0xff;
  }
  em[2 + ps_len] = 0x00;
  size_t pos = 3 + ps_len;
  for (uint8_t b : kSha256DigestInfoPrefix) {
    em[pos++] = b;
  }
  for (uint8_t b : digest) {
    em[pos++] = b;
  }
  return em;
}

std::vector<uint8_t> RsaSignSha256(const RsaKeyPair& key, const uint8_t* msg, size_t len) {
  const Digest digest = Sha256Hash(msg, len);
  const size_t k = key.pub.ModulusBytes();
  const std::vector<uint8_t> em = Pkcs1V15EncodeSha256(digest, k);
  const BigNum m = BigNum::FromBytesBe(em);
  const BigNum s = RsaPrivateOp(key, m);
  return s.ToBytesBe(k);
}

bool RsaVerifySha256(const RsaPublicKey& key, const uint8_t* msg, size_t len,
                     const std::vector<uint8_t>& signature) {
  const size_t k = key.ModulusBytes();
  if (signature.size() != k) {
    return false;
  }
  const BigNum s = BigNum::FromBytesBe(signature);
  if (s >= key.n) {
    return false;
  }
  const BigNum m = BigNum::ModExp(s, key.e, key.n);
  const std::vector<uint8_t> em = m.ToBytesBe(k);
  const Digest digest = Sha256Hash(msg, len);
  const std::vector<uint8_t> expected = Pkcs1V15EncodeSha256(digest, k);
  if (em.size() != expected.size()) {
    return false;
  }
  return ConstantTimeEqual(em.data(), expected.data(), em.size());
}

}  // namespace komodo::crypto
