// SHA-256 (FIPS 180-4). Stands in for the Vale-verified SHA the paper's
// monitor borrows (§7.2): used for enclave measurement, HMAC attestation and
// the notary example. Incremental API so the monitor can extend a measurement
// across MapSecure/InitThread calls exactly as the paper describes (§4).
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace komodo::crypto {

inline constexpr size_t kSha256DigestBytes = 32;
inline constexpr size_t kSha256DigestWords = 8;
inline constexpr size_t kSha256BlockBytes = 64;

using Digest = std::array<uint8_t, kSha256DigestBytes>;
// Word view of a digest (big-endian words, as the monitor stores them).
using DigestWords = std::array<uint32_t, kSha256DigestWords>;

class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const uint8_t* data, size_t len);
  void Update(const std::vector<uint8_t>& data) { Update(data.data(), data.size()); }
  // Appends a 32-bit word in little-endian byte order (the machine's memory
  // serialisation; see PhysMemory::ReadPageBytes).
  void UpdateWordLe(uint32_t w);
  Digest Finalize();

  // Number of message bytes absorbed so far (used by the cycle model: the
  // monitor charges per compression-function invocation).
  uint64_t total_bytes() const { return total_len_; }

  // Direct snapshot of the running state as 8 words — the measurement the
  // monitor stores in the address-space page before finalisation.
  DigestWords StateWords() const;

  // Full streaming-state serialisation (8 state words, 16 buffer words,
  // buffer length, 64-bit total length): lets the monitor persist an
  // in-progress measurement inside a simulated secure page across calls.
  static constexpr size_t kExportWords = 27;
  std::array<uint32_t, kExportWords> Export() const;
  void Import(const std::array<uint32_t, kExportWords>& words);

 private:
  void Compress(const uint8_t block[kSha256BlockBytes]);

  std::array<uint32_t, 8> state_;
  uint8_t buffer_[kSha256BlockBytes];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

Digest Sha256Hash(const uint8_t* data, size_t len);
Digest Sha256Hash(const std::vector<uint8_t>& data);

DigestWords DigestToWords(const Digest& d);
Digest WordsToDigest(const DigestWords& w);
std::string DigestToHex(const Digest& d);

// Constant-time comparison (the monitor's Verify call must not leak how many
// MAC bytes matched).
bool ConstantTimeEqual(const uint8_t* a, const uint8_t* b, size_t len);

}  // namespace komodo::crypto

#endif  // SRC_CRYPTO_SHA256_H_
