// RSA with PKCS#1 v1.5 signatures over SHA-256 — the signing primitive of the
// Ironclad-derived notary enclave (§8.2). Key generation is deterministic
// from a DRBG so the benchmark workload is reproducible run to run.
#ifndef SRC_CRYPTO_RSA_H_
#define SRC_CRYPTO_RSA_H_

#include <cstddef>
#include <vector>

#include "src/crypto/bignum.h"
#include "src/crypto/drbg.h"
#include "src/crypto/sha256.h"

namespace komodo::crypto {

struct RsaPublicKey {
  BigNum n;
  BigNum e;
  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  BigNum d;
  BigNum p;
  BigNum q;
  // CRT parameters (filled by RsaGenerateKey): d mod p-1, d mod q-1, q^-1 mod p.
  BigNum dp;
  BigNum dq;
  BigNum qinv;
  bool has_crt = false;
};

// The raw private-key operation m^d mod n, using the Chinese-remainder
// decomposition when the key carries CRT parameters (~4x fewer limb
// operations; both paths are tested to agree).
BigNum RsaPrivateOp(const RsaKeyPair& key, const BigNum& m);

// Generates an RSA key with modulus of `bits` bits (e = 65537).
RsaKeyPair RsaGenerateKey(HashDrbg* drbg, size_t bits);

// PKCS#1 v1.5 signature of SHA-256(message). Returns ModulusBytes() bytes.
std::vector<uint8_t> RsaSignSha256(const RsaKeyPair& key, const uint8_t* msg, size_t len);
bool RsaVerifySha256(const RsaPublicKey& key, const uint8_t* msg, size_t len,
                     const std::vector<uint8_t>& signature);

// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest (exposed for tests).
std::vector<uint8_t> Pkcs1V15EncodeSha256(const Digest& digest, size_t em_len);

}  // namespace komodo::crypto

#endif  // SRC_CRYPTO_RSA_H_
