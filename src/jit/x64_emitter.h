// Minimal x86-64 machine-code emitter for the A32 block translator.
//
// Emits into a plain byte vector; the engine copies finished blocks into the
// executable code cache. Only the addressing shapes the translator uses are
// provided: register-register ALU, [base + disp32] and [base + index*4 +
// disp32] memory operands (bases are RBX/RBP only, so no SIB special cases
// beyond indexed forms), byte moves for the Psr flag bytes, setcc, forward
// jumps with fixups, and absolute 64-bit calls. The emitter itself is
// portable C++ and compiles on every host; only *executing* its output is
// x86-64 specific (see jit.cc's Available()).
#ifndef SRC_JIT_X64_EMITTER_H_
#define SRC_JIT_X64_EMITTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace komodo::jit {

// Register numbers in hardware encoding order.
enum X64Reg : int {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

// Condition-code nibbles for jcc (0F 8x) and setcc (0F 9x).
enum X64Cc : uint8_t {
  kCcO = 0x0,   // overflow
  kCcNo = 0x1,
  kCcB = 0x2,   // below = carry set
  kCcAe = 0x3,  // above-or-equal = carry clear
  kCcE = 0x4,   // equal / zero
  kCcNe = 0x5,
  kCcS = 0x8,   // sign
  kCcNs = 0x9,
};

class X64Emitter {
 public:
  // x64 ALU /digit (and reg-form opcode) order.
  enum class Alu : uint8_t {
    kAdd = 0,
    kOr = 1,
    kAdc = 2,
    kSbb = 3,
    kAnd = 4,
    kSub = 5,
    kXor = 6,
    kCmp = 7,
  };
  // Group-2 shift /digit order.
  enum class Sh : uint8_t {
    kRol = 0,
    kRor = 1,
    kRcr = 3,
    kShl = 4,
    kShr = 5,
    kSar = 7,
  };

  const std::vector<uint8_t>& code() const { return buf_; }
  size_t size() const { return buf_.size(); }

  // --- Stack / control ------------------------------------------------------
  void PushR64(int r);
  void PopR64(int r);
  void Ret();
  void CallReg(int r);  // call r64
  // Forward jumps: emit with a rel32 placeholder, patch at the target.
  size_t JccForward(uint8_t cc);
  size_t JmpForward();
  void BindForward(size_t fixup);

  // --- Moves ----------------------------------------------------------------
  void MovRegImm64(int r, uint64_t v);  // movabs
  void MovRegImm32(int r, uint32_t v);  // zero-extends into the full register
  void MovRegReg32(int dst, int src);
  void MovRegReg64(int dst, int src);
  void XchgRegReg32(int a, int b);
  void LoadMem32(int dst, int base, int32_t disp);    // mov r32, [base+disp]
  void StoreMem32(int base, int32_t disp, int src);   // mov [base+disp], r32
  void StoreMemImm32(int base, int32_t disp, uint32_t imm);
  void LoadMemZx8(int dst, int base, int32_t disp);   // movzx r32, byte [..]
  void LoadMem8(int dst, int base, int32_t disp);     // mov r8low, byte [..]
  void StoreMem8(int base, int32_t disp, int src);    // mov byte [..], r8low
  void StoreMemImm8(int base, int32_t disp, uint8_t imm);
  // mov r32, [base + index*4 + disp] and the store form (index != RSP).
  void LoadIndex32(int dst, int base, int index, int32_t disp);
  void StoreIndex32(int base, int index, int32_t disp, int src);

  // --- ALU ------------------------------------------------------------------
  void AluRegReg32(Alu op, int dst, int src);
  void AluRegImm32(Alu op, int r, uint32_t imm);
  void TestRegReg32(int a, int b);
  void TestRegImm32(int r, uint32_t imm);
  void NotReg32(int r);
  void ImulRegReg32(int dst, int src);
  void ShiftRegImm32(Sh k, int r, uint8_t amount);  // amount 1..31
  void BtRegImm32(int r, uint8_t bit);
  void ShrReg64Imm(int r, uint8_t amount);
  void CmpMem8Imm(int base, int32_t disp, uint8_t imm);
  void CmpReg8Mem8(int reg, int base, int32_t disp);  // cmp r8low, byte [..]
  void AddMem64Imm(int base, int32_t disp, uint32_t imm);  // add qword [..], imm

  // --- Flags ----------------------------------------------------------------
  void SetccReg8(uint8_t cc, int reg);
  void SetccMem8(uint8_t cc, int base, int32_t disp);

 private:
  void B(uint8_t b) { buf_.push_back(b); }
  void B32(uint32_t v);
  void B64(uint64_t v);
  // REX prefix covering reg (R) and rm/base (B); emitted only when needed.
  void Rex(bool w, int reg, int rm);
  // mod=10 ModRM for [base + disp32]; handles the RSP/R12 SIB escape.
  void ModRmDisp32(int reg, int base, int32_t disp);
  // mod=10 ModRM+SIB for [base + index*4 + disp32].
  void ModRmIndex32(int reg, int base, int index, int32_t disp);

  std::vector<uint8_t> buf_;
};

}  // namespace komodo::jit

#endif  // SRC_JIT_X64_EMITTER_H_
