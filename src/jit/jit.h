// A32 → x64 dynamic binary translator for enclave execution (DESIGN.md §13).
//
// The JIT compiles straight-line A32 basic blocks (ending at branches,
// SVC/SMC, mode-changing or PC-writing instructions) into native x64 code in
// an executable code cache, keyed by the block's *physical* start address and
// validated against PhysMemory::PageGen generation counters — the same
// coherence discipline the interpreter's decode cache uses, so self-modifying
// code and page reuse (InstallL2/Remove) invalidate translated blocks by
// construction. Everything outside the hot subset (coprocessor and PSR ops,
// traps, exception returns, PC-as-raw-operand oddities) falls back to the
// cached interpreter one step at a time.
//
// Trust argument: the JIT is *untrusted* fast-path machinery. It must retire
// bit-identical architectural state — registers, memory, exceptions,
// steps_retired and the calibrated Cortex-A7 cycle counter — to the
// interpreter, and the interpreter remains the oracle: the three-way
// differential suite (tests/arm/interp_diff_test.cc, tests/jit/) and
// komodo-fuzz's interp-equivalence oracle gate every change. Like the
// interpreter caches, JIT state is architecturally invisible bookkeeping:
// excluded from state comparison, cold after copy, and disabled by
// KOMODO_JIT=off|0|false (mirroring KOMODO_INTERP_CACHE). On non-x86_64 hosts
// the translator reports unavailable and the build runs interpreter-only.
#ifndef SRC_JIT_JIT_H_
#define SRC_JIT_JIT_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace komodo::arm {
struct MachineState;
enum class Exception : uint8_t;
}  // namespace komodo::arm

namespace komodo::jit {

// True when this build can execute translated code (x86-64 host with POSIX
// executable mappings). When false, JitState::enabled() is always false and
// every dispatch falls back to the interpreter; nothing else changes.
bool Available();

struct JitStats {
  uint64_t blocks_translated = 0;    // basic blocks compiled to x64
  uint64_t block_hits = 0;           // dispatches that entered compiled code
  uint64_t block_invalidations = 0;  // generation-stale blocks retranslated
  uint64_t fallback_steps = 0;       // steps handed back to the interpreter
  uint64_t jit_steps = 0;            // steps retired inside compiled blocks
  uint64_t code_cache_flushes = 0;   // whole-cache wipes (buffer exhausted)
};

class Engine;  // code cache + translator; private to the jit library

// One live code-cache entry, exported for the fuzzer's evolve-mode coverage
// harvest (DESIGN.md §15): the (phys, va) block key plus whether the entry is
// compiled code or a cached interpret-one verdict.
struct ResidentBlock {
  uint64_t phys = 0;
  uint64_t va = 0;
  bool compiled = false;
};

// Per-machine JIT handle, mirroring InterpCaches' discipline: the enabled
// flag copies with the machine, the engine (code cache) is lazily allocated
// and always starts cold in a copy, and nothing here is architectural state.
class JitState {
 public:
  JitState();  // enabled from KOMODO_JIT (default on) when Available()
  JitState(const JitState& o);
  JitState& operator=(const JitState& o);
  ~JitState();

  bool enabled() const { return enabled_; }
  // Forced off when !Available(); turning the JIT off/on drops every block.
  void set_enabled(bool on);

  const JitStats& stats() const { return stats_; }
  JitStats& mutable_stats() { return stats_; }

  // Orphans every translated block (epoch bump, O(1)).
  void InvalidateAll();

  // Live block-table entries (current epoch), sorted by (phys, va). Empty
  // when the engine was never created. Coverage signal only; never part of
  // the JIT's architectural contract.
  std::vector<ResidentBlock> ResidentBlocks() const;

  // Lazily constructed engine; nullptr when unavailable (non-x86_64, or the
  // executable mapping failed — both degrade to interpreter-only).
  Engine* GetEngine();

 private:
  bool enabled_;
  JitStats stats_;
  std::unique_ptr<Engine> engine_;
};

// Outcome of one attempted block dispatch.
struct RunOutcome {
  bool ran = false;         // false: caller must interpret exactly one step
  uint64_t steps = 0;       // steps retired by the block (when ran)
  bool took_exception = false;
  arm::Exception exception{};
};

// Tries to execute one translated basic block at m.pc. Declines (ran=false)
// when the JIT is disabled/unavailable, a deliverable interrupt is pending,
// the fetch does not translate, the instruction at pc is outside the hot
// subset, or the block might retire more than `max_steps` instructions (the
// caller's budget must be exact). On decline the caller interprets one step.
RunOutcome TryRunBlock(arm::MachineState& m, uint64_t max_steps);

}  // namespace komodo::jit

#endif  // SRC_JIT_JIT_H_
