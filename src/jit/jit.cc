// JIT engine: per-machine enabled flag (KOMODO_JIT), the executable code
// cache with generation-validated block lookup, and the dispatch entry the
// interpreter's RunUntilException loop calls.
#include "src/jit/jit.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/arm/execute.h"
#include "src/arm/machine.h"
#include "src/jit/jit_internal.h"

#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
#define KOMODO_JIT_HAVE_X64 1
#include <sys/mman.h>
#else
#define KOMODO_JIT_HAVE_X64 0
#endif

namespace komodo::jit {

bool Available() { return KOMODO_JIT_HAVE_X64 != 0; }

namespace {

// Mirrors interp_cache.cc's KOMODO_INTERP_CACHE gate: default on, any of
// off/0/false disables.
bool EnvEnabled() {
  const char* v = std::getenv("KOMODO_JIT");
  if (v == nullptr) {
    return true;
  }
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
           std::strcmp(v, "false") == 0);
}

}  // namespace

JitState::JitState() : enabled_(Available() && EnvEnabled()) {}

JitState::JitState(const JitState& o) : enabled_(o.enabled_) {}

JitState& JitState::operator=(const JitState& o) {
  enabled_ = o.enabled_;
  InvalidateAll();
  return *this;
}

JitState::~JitState() = default;

void JitState::set_enabled(bool on) {
  enabled_ = on && Available();
  InvalidateAll();
}

void JitState::InvalidateAll() {
  if (engine_ != nullptr) {
    engine_->InvalidateAll();
  }
}

std::vector<ResidentBlock> JitState::ResidentBlocks() const {
  std::vector<ResidentBlock> out;
  if (engine_ == nullptr) {
    return out;
  }
  engine_->ForEachResident([&out](const BlockEntry& e) {
    out.push_back({e.phys, e.va, e.kind == BlockKind::kCompiled});
  });
  std::sort(out.begin(), out.end(), [](const ResidentBlock& a, const ResidentBlock& b) {
    if (a.phys != b.phys) return a.phys < b.phys;
    if (a.va != b.va) return a.va < b.va;
    return a.compiled < b.compiled;
  });
  return out;
}

Engine* JitState::GetEngine() {
  if (engine_ == nullptr) {
    engine_ = Engine::Create();
    if (engine_ == nullptr) {
      enabled_ = false;  // executable mapping unavailable: interpreter-only
    }
  }
  return engine_.get();
}

std::unique_ptr<Engine> Engine::Create() {
#if KOMODO_JIT_HAVE_X64
  void* p = mmap(nullptr, kCodeBytes, PROT_READ | PROT_WRITE | PROT_EXEC,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return nullptr;
  }
  std::unique_ptr<Engine> eng(new Engine());
  eng->buf_ = static_cast<uint8_t*>(p);
  return eng;
#else
  return nullptr;
#endif
}

Engine::~Engine() {
#if KOMODO_JIT_HAVE_X64
  if (buf_ != nullptr) {
    munmap(buf_, kCodeBytes);
  }
#endif
}

BlockEntry* Engine::LookupOrTranslate(const arm::MachineState& m, arm::paddr phys,
                                      arm::vaddr va, JitStats& st) {
  BlockEntry& e = table_[(phys >> 2) & (kTableEntries - 1)];
  if (e.kind != BlockKind::kEmpty && e.epoch == epoch_ && e.phys == phys &&
      e.va == va) {
    if (m.mem.PageGenAt(e.gen_idx) == e.gen) {
      return &e;
    }
    ++st.block_invalidations;  // self-modifying code / page reuse
  }
  CompiledBlock cb = CompileBlock(m.mem, va, phys);
  e.phys = phys;
  e.va = va;
  e.epoch = epoch_;
  e.gen_idx = m.mem.PageIndexOf(phys);
  e.gen = m.mem.PageGenAt(e.gen_idx);
  if (cb.len_words == 0) {
    // Head instruction is outside the hot subset; cache that verdict so the
    // dispatcher declines in O(1) on repeats (e.g. a hot SVC loop).
    e.kind = BlockKind::kInterpretOne;
    e.len_words = 1;
    e.fn = nullptr;
    return &e;
  }
  if (used_ + cb.code.size() > kCodeBytes) {
    // Code buffer exhausted: orphan everything and start over.
    ++epoch_;
    e.epoch = epoch_;
    used_ = 0;
    ++st.code_cache_flushes;
    if (cb.code.size() > kCodeBytes) {
      e.kind = BlockKind::kEmpty;
      return nullptr;
    }
  }
  std::memcpy(buf_ + used_, cb.code.data(), cb.code.size());
  e.fn = reinterpret_cast<BlockFn>(buf_ + used_);
  used_ += cb.code.size();
  e.kind = BlockKind::kCompiled;
  e.len_words = cb.len_words;
  ++st.blocks_translated;
  return &e;
}

RunOutcome TryRunBlock(arm::MachineState& m, uint64_t max_steps) {
  RunOutcome out;
  JitState& js = m.jit;
  JitStats& st = js.mutable_stats();
  Engine* eng = js.GetEngine();
  if (eng == nullptr) {
    ++st.fallback_steps;
    return out;
  }
  // A deliverable interrupt preempts the fetch; let the interpreter take it.
  if ((m.pending_fiq && !m.cpsr.fiq_masked) ||
      (m.pending_irq && !m.cpsr.irq_masked)) {
    ++st.fallback_steps;
    return out;
  }
  const arm::word pc = m.pc;
  if (!arm::IsWordAligned(pc)) {
    ++st.fallback_steps;  // prefetch abort: interpreter path
    return out;
  }
  const arm::Translation fetch = arm::TranslateAddress(m, pc, arm::Access::kFetch);
  if (!fetch.ok) {
    ++st.fallback_steps;
    return out;
  }
  BlockEntry* e = eng->LookupOrTranslate(m, fetch.phys, pc, st);
  if (e == nullptr || e->kind != BlockKind::kCompiled || e->len_words > max_steps) {
    ++st.fallback_steps;
    return out;
  }
  JitRt rt{&m, e->phys, e->phys + 4 * e->len_words, 0, 0};
  const uint64_t steps_before = m.steps_retired;
  const uint64_t code = e->fn(&m, &rt);
  out.ran = true;
  out.steps = m.steps_retired - steps_before;
  ++st.block_hits;
  st.jit_steps += out.steps;
  if ((code & kExitExceptionBit) != 0) {
    out.took_exception = true;
    out.exception = static_cast<arm::Exception>(code & 0xff);
  }
  return out;
}

}  // namespace komodo::jit
