// A32 basic-block → x64 translator (DESIGN.md §13).
//
// Each translated instruction retires exactly like one interpreter Step():
// it increments steps_retired, evaluates its condition against the live CPSR
// bytes, charges the calibrated Cortex-A7 cycle costs, and applies its
// architectural effects through the same rules execute.cc implements —
// including PC-as-operand = insn_addr + 8, banked SP/LR access indexed by the
// current mode byte, the ARM↔x64 carry-polarity flip on subtraction, and the
// exact shifter-carry semantics of every immediate-shift form. Memory
// accesses go through runtime helpers that reuse TranslateAddress and the
// live-page-table store hook, so faults, TrustZone filtering and TLB
// consistency behave bit-identically to the interpreter.
//
// Register plan inside a block (System V x64):
//   rbx = MachineState*      rbp = JitRt*          (callee-saved, prologue)
//   eax = primary/result     ecx = operand2        edx = scratch/mode index
//   r8b = shifter carry      r12d = LDM/STM addr   r13d = LDM loaded PC
//                            r14d = LDM/STM base   (callee-saved, prologue)
#include <cassert>
#include <cstdint>
#include <vector>

#include "src/arm/cycle_model.h"
#include "src/arm/isa.h"
#include "src/arm/machine.h"
#include "src/jit/jit_internal.h"
#include "src/jit/x64_emitter.h"

namespace komodo::jit {

namespace {

using arm::Cond;
using arm::Instruction;
using arm::Op;
using arm::Reg;
using arm::ShiftKind;
using arm::word;

const arm::CycleCosts& kCosts = arm::kCortexA7Costs;

bool IsDataProcessing(Op op) {
  return static_cast<uint8_t>(op) <= static_cast<uint8_t>(Op::kMvn);
}

bool IsCompare(Op op) {
  return op == Op::kTst || op == Op::kTeq || op == Op::kCmp || op == Op::kCmn;
}

bool IsLogical(Op op) {
  switch (op) {
    case Op::kAnd:
    case Op::kTst:
    case Op::kEor:
    case Op::kTeq:
    case Op::kOrr:
    case Op::kMov:
    case Op::kBic:
    case Op::kMvn:
      return true;
    default:
      return false;
  }
}

// True if the instruction ends a basic block by writing the PC. The
// exception-return idiom never reaches here (not Jitable).
bool IsTerminator(const Instruction& i) {
  switch (i.op) {
    case Op::kB:
    case Op::kBl:
    case Op::kBx:
      return true;
    case Op::kLdr:
      return i.rd == arm::PC;
    case Op::kLdm:
      return ((i.reg_list >> arm::PC) & 1) != 0;
    default:
      break;
  }
  return IsDataProcessing(i.op) && !IsCompare(i.op) && i.rd == arm::PC &&
         !i.set_flags;
}

// The hot subset the translator handles; everything else falls back to the
// interpreter per instruction. PC-as-operand forms that read the *raw* PC in
// the interpreter (ReadReg(PC) mid-step) are excluded rather than modelled.
bool Jitable(const Instruction& i) {
  if (IsDataProcessing(i.op)) {
    return !arm::IsExceptionReturn(i);
  }
  switch (i.op) {
    case Op::kMul:
      return i.rd != arm::PC && i.rn != arm::PC && i.rm != arm::PC;
    case Op::kMovw:
    case Op::kMovt:
      return i.rd != arm::PC;
    case Op::kLdr:
    case Op::kStr:
      return !(i.mem_reg_offset && i.rm == arm::PC);
    case Op::kLdrb:
    case Op::kStrb:
      return i.rd != arm::PC && !(i.mem_reg_offset && i.rm == arm::PC);
    case Op::kLdm:
    case Op::kStm:
      return i.rn != arm::PC;
    case Op::kB:
    case Op::kBl:
      return true;
    case Op::kBx:
      return i.rm != arm::PC;
    default:
      return false;  // traps, PSR/CP15 moves: interpreter only
  }
}

class BlockCompiler {
 public:
  CompiledBlock Compile(const arm::PhysMemory& mem, arm::vaddr va, arm::paddr phys);

 private:
  using Alu = X64Emitter::Alu;
  using Sh = X64Emitter::Sh;
  // Where the ARM shifter carry ended up after operand2 evaluation.
  enum class CarrySrc { kUnchanged, kZero, kOne, kR8 };

  void EmitPrologue();
  void EmitEpilogue();
  void EmitExitConst(uint32_t code);
  void EmitChargeCycles(uint64_t n) {
    e_.AddMem64Imm(RBX, kOffCycles, static_cast<uint32_t>(n));
  }
  void EmitHelperCall(uint64_t fn) {
    e_.MovRegImm64(RAX, fn);
    e_.CallReg(RAX);
  }
  void EmitStatusCheck();
  void EmitRestartCheck(word va);
  void LoadGuestReg(int dst, Reg r);
  void StoreGuestReg(Reg r, int src);
  void LoadOperandReg(int dst, Reg r, word va);
  std::vector<size_t> EmitCondFail(Cond c);
  CarrySrc EmitOperand2(const Instruction& i, word va, bool need_carry);
  void EmitInsn(const Instruction& i, word va);
  void EmitDataProcessing(const Instruction& i, word va);
  void EmitMul(const Instruction& i);
  void EmitMovwMovt(const Instruction& i);
  void EmitMemSingle(const Instruction& i, word va);
  void EmitBlockTransfer(const Instruction& i, word va);
  void EmitBranch(const Instruction& i, word va);

  X64Emitter e_;
};

void BlockCompiler::EmitPrologue() {
  e_.PushR64(RBX);
  e_.PushR64(RBP);
  e_.PushR64(R12);
  e_.PushR64(R13);
  e_.PushR64(R14);  // 5 pushes + return address: rsp stays 16-byte aligned
  e_.MovRegReg64(RBX, RDI);
  e_.MovRegReg64(RBP, RSI);
}

void BlockCompiler::EmitEpilogue() {
  e_.PopR64(R14);
  e_.PopR64(R13);
  e_.PopR64(R12);
  e_.PopR64(RBP);
  e_.PopR64(RBX);
  e_.Ret();
}

void BlockCompiler::EmitExitConst(uint32_t code) {
  if (code == 0) {
    e_.AluRegReg32(Alu::kXor, RAX, RAX);
  } else {
    e_.MovRegImm32(RAX, code);
  }
  EmitEpilogue();
}

// After a helper call: high 32 bits of rax are 0 (ok) or the exception exit
// code; exit with it if set, else continue with the value in eax.
void BlockCompiler::EmitStatusCheck() {
  e_.MovRegReg64(RDX, RAX);
  e_.ShrReg64Imm(RDX, 32);
  const size_t ok = e_.JccForward(kCcE);
  e_.MovRegReg64(RAX, RDX);
  EmitEpilogue();
  e_.BindForward(ok);
}

// After a store-class instruction completes: if a helper flagged a restart
// (store into this block's own code, or TLB consistency lost), end the block
// at this instruction boundary with the PC advanced past it.
void BlockCompiler::EmitRestartCheck(word va) {
  e_.CmpMem8Imm(RBP, kRtOffRestart, 0);
  const size_t ok = e_.JccForward(kCcE);
  e_.StoreMemImm32(RBX, kOffPc, va + 4);
  EmitExitConst(0);
  e_.BindForward(ok);
}

void BlockCompiler::LoadGuestReg(int dst, Reg r) {
  if (r < arm::SP) {
    e_.LoadMem32(dst, RBX, kOffR + 4 * static_cast<int32_t>(r));
    return;
  }
  assert(r != arm::PC);
  assert(dst != RDX);
  e_.LoadMemZx8(RDX, RBX, kOffMode);
  e_.LoadIndex32(dst, RBX, RDX, r == arm::SP ? kOffSpBank : kOffLrBank);
}

void BlockCompiler::StoreGuestReg(Reg r, int src) {
  if (r < arm::SP) {
    e_.StoreMem32(RBX, kOffR + 4 * static_cast<int32_t>(r), src);
    return;
  }
  assert(r != arm::PC);
  assert(src != RDX);
  e_.LoadMemZx8(RDX, RBX, kOffMode);
  e_.StoreIndex32(RBX, RDX, r == arm::SP ? kOffSpBank : kOffLrBank, src);
}

// Operand read with the A32 rule that PC reads as the instruction address + 8.
void BlockCompiler::LoadOperandReg(int dst, Reg r, word va) {
  if (r == arm::PC) {
    e_.MovRegImm32(dst, va + 8);
  } else {
    LoadGuestReg(dst, r);
  }
}

// Emits the condition test; returns fixups that jump when the condition
// FAILS (to be bound at the caller's cond-fail stub).
std::vector<size_t> BlockCompiler::EmitCondFail(Cond c) {
  std::vector<size_t> fails;
  const auto flag_is = [&](int32_t off) { e_.CmpMem8Imm(RBX, off, 0); };
  const auto n_vs_v = [&] {
    e_.LoadMem8(RDX, RBX, kOffFlagN);
    e_.CmpReg8Mem8(RDX, RBX, kOffFlagV);
  };
  switch (c) {
    case Cond::kAl:
      break;
    case Cond::kEq:
      flag_is(kOffFlagZ);
      fails.push_back(e_.JccForward(kCcE));
      break;
    case Cond::kNe:
      flag_is(kOffFlagZ);
      fails.push_back(e_.JccForward(kCcNe));
      break;
    case Cond::kCs:
      flag_is(kOffFlagC);
      fails.push_back(e_.JccForward(kCcE));
      break;
    case Cond::kCc:
      flag_is(kOffFlagC);
      fails.push_back(e_.JccForward(kCcNe));
      break;
    case Cond::kMi:
      flag_is(kOffFlagN);
      fails.push_back(e_.JccForward(kCcE));
      break;
    case Cond::kPl:
      flag_is(kOffFlagN);
      fails.push_back(e_.JccForward(kCcNe));
      break;
    case Cond::kVs:
      flag_is(kOffFlagV);
      fails.push_back(e_.JccForward(kCcE));
      break;
    case Cond::kVc:
      flag_is(kOffFlagV);
      fails.push_back(e_.JccForward(kCcNe));
      break;
    case Cond::kHi:  // C && !Z
      flag_is(kOffFlagC);
      fails.push_back(e_.JccForward(kCcE));
      flag_is(kOffFlagZ);
      fails.push_back(e_.JccForward(kCcNe));
      break;
    case Cond::kLs: {  // !C || Z
      flag_is(kOffFlagC);
      const size_t pass = e_.JccForward(kCcE);
      flag_is(kOffFlagZ);
      fails.push_back(e_.JccForward(kCcE));
      e_.BindForward(pass);
      break;
    }
    case Cond::kGe:  // N == V
      n_vs_v();
      fails.push_back(e_.JccForward(kCcNe));
      break;
    case Cond::kLt:  // N != V
      n_vs_v();
      fails.push_back(e_.JccForward(kCcE));
      break;
    case Cond::kGt:  // !Z && N == V
      flag_is(kOffFlagZ);
      fails.push_back(e_.JccForward(kCcNe));
      n_vs_v();
      fails.push_back(e_.JccForward(kCcNe));
      break;
    case Cond::kLe: {  // Z || N != V
      flag_is(kOffFlagZ);
      const size_t pass = e_.JccForward(kCcNe);
      n_vs_v();
      fails.push_back(e_.JccForward(kCcE));
      e_.BindForward(pass);
      break;
    }
  }
  return fails;
}

// Materializes operand2 into ecx, reproducing ApplyShift()'s value and carry
// semantics for every immediate-shift form (LSR/ASR #0 mean #32; ROR #0 is
// RRX). The shifter carry lands in r8b when dynamic.
BlockCompiler::CarrySrc BlockCompiler::EmitOperand2(const Instruction& i, word va,
                                                    bool need_carry) {
  const arm::Operand2& o = i.op2;
  if (o.is_imm) {
    const word v = o.ImmValue();
    e_.MovRegImm32(RCX, v);
    if (o.rot4 == 0) {
      return CarrySrc::kUnchanged;
    }
    return (v >> 31) != 0 ? CarrySrc::kOne : CarrySrc::kZero;
  }
  LoadOperandReg(RCX, o.rm, va);
  const unsigned amt = o.shift_imm;
  switch (o.shift) {
    case ShiftKind::kLsl:
      if (amt == 0) {
        return CarrySrc::kUnchanged;
      }
      e_.ShiftRegImm32(Sh::kShl, RCX, static_cast<uint8_t>(amt));
      break;
    case ShiftKind::kLsr:
      if (amt == 0) {  // LSR #32: result 0, carry = bit 31
        if (need_carry) {
          e_.BtRegImm32(RCX, 31);
          e_.SetccReg8(kCcB, R8);
        }
        e_.MovRegImm32(RCX, 0);
        return CarrySrc::kR8;
      }
      e_.ShiftRegImm32(Sh::kShr, RCX, static_cast<uint8_t>(amt));
      break;
    case ShiftKind::kAsr:
      if (amt == 0) {  // ASR #32: sign-fill, carry = bit 31
        if (need_carry) {
          e_.BtRegImm32(RCX, 31);
          e_.SetccReg8(kCcB, R8);
        }
        e_.ShiftRegImm32(Sh::kSar, RCX, 31);
        return CarrySrc::kR8;
      }
      e_.ShiftRegImm32(Sh::kSar, RCX, static_cast<uint8_t>(amt));
      break;
    case ShiftKind::kRor:
      if (amt == 0) {  // RRX: rotate right through carry by one
        e_.LoadMemZx8(RDX, RBX, kOffFlagC);
        e_.ShiftRegImm32(Sh::kShr, RDX, 1);  // CF = old C flag
        e_.ShiftRegImm32(Sh::kRcr, RCX, 1);
      } else {
        e_.ShiftRegImm32(Sh::kRor, RCX, static_cast<uint8_t>(amt));
      }
      break;
  }
  // x64 leaves CF = the last bit shifted/rotated out — exactly ARM's shifter
  // carry for every form above.
  if (need_carry) {
    e_.SetccReg8(kCcB, R8);
  }
  return CarrySrc::kR8;
}

void BlockCompiler::EmitDataProcessing(const Instruction& i, word va) {
  EmitChargeCycles(kCosts.alu);
  const bool compare = IsCompare(i.op);
  const bool flags = i.set_flags || compare;
  const bool logical = IsLogical(i.op);
  const CarrySrc cs = EmitOperand2(i, va, flags && logical);
  switch (i.op) {
    case Op::kAnd:
    case Op::kTst:
      LoadOperandReg(RAX, i.rn, va);
      e_.AluRegReg32(Alu::kAnd, RAX, RCX);
      break;
    case Op::kEor:
    case Op::kTeq:
      LoadOperandReg(RAX, i.rn, va);
      e_.AluRegReg32(Alu::kXor, RAX, RCX);
      break;
    case Op::kOrr:
      LoadOperandReg(RAX, i.rn, va);
      e_.AluRegReg32(Alu::kOr, RAX, RCX);
      break;
    case Op::kBic:
      e_.NotReg32(RCX);
      LoadOperandReg(RAX, i.rn, va);
      e_.AluRegReg32(Alu::kAnd, RAX, RCX);
      break;
    case Op::kMov:
      e_.MovRegReg32(RAX, RCX);
      break;
    case Op::kMvn:
      e_.NotReg32(RCX);
      e_.MovRegReg32(RAX, RCX);
      break;
    case Op::kSub:
    case Op::kCmp:
      LoadOperandReg(RAX, i.rn, va);
      e_.AluRegReg32(Alu::kSub, RAX, RCX);
      break;
    case Op::kRsb:
      LoadOperandReg(RAX, i.rn, va);
      e_.XchgRegReg32(RAX, RCX);  // eax = op2, ecx = rn
      e_.AluRegReg32(Alu::kSub, RAX, RCX);
      break;
    case Op::kAdd:
    case Op::kCmn:
      LoadOperandReg(RAX, i.rn, va);
      e_.AluRegReg32(Alu::kAdd, RAX, RCX);
      break;
    case Op::kAdc:
      LoadOperandReg(RAX, i.rn, va);
      e_.LoadMemZx8(RDX, RBX, kOffFlagC);
      e_.AluRegImm32(Alu::kAdd, RDX, 0xffff'ffff);  // CF = C flag
      e_.AluRegReg32(Alu::kAdc, RAX, RCX);
      break;
    case Op::kSbc:
      LoadOperandReg(RAX, i.rn, va);
      e_.LoadMemZx8(RDX, RBX, kOffFlagC);
      e_.AluRegImm32(Alu::kCmp, RDX, 1);  // CF = !C (x64 borrow = 1 - ARM C)
      e_.AluRegReg32(Alu::kSbb, RAX, RCX);
      break;
    case Op::kRsc:
      LoadOperandReg(RAX, i.rn, va);
      e_.XchgRegReg32(RAX, RCX);
      e_.LoadMemZx8(RDX, RBX, kOffFlagC);
      e_.AluRegImm32(Alu::kCmp, RDX, 1);
      e_.AluRegReg32(Alu::kSbb, RAX, RCX);
      break;
    default:
      assert(false && "not a data-processing op");
      break;
  }
  if (flags) {
    if (logical) {
      e_.TestRegReg32(RAX, RAX);
      e_.SetccMem8(kCcS, RBX, kOffFlagN);
      e_.SetccMem8(kCcE, RBX, kOffFlagZ);
      switch (cs) {
        case CarrySrc::kUnchanged:
          break;
        case CarrySrc::kZero:
          e_.StoreMemImm8(RBX, kOffFlagC, 0);
          break;
        case CarrySrc::kOne:
          e_.StoreMemImm8(RBX, kOffFlagC, 1);
          break;
        case CarrySrc::kR8:
          e_.StoreMem8(RBX, kOffFlagC, R8);
          break;
      }
    } else {
      // ARM C on subtraction = NOT x64 borrow; on addition they agree.
      const bool add_family = i.op == Op::kAdd || i.op == Op::kCmn || i.op == Op::kAdc;
      e_.SetccMem8(add_family ? kCcB : kCcAe, RBX, kOffFlagC);
      e_.SetccMem8(kCcO, RBX, kOffFlagV);
      e_.SetccMem8(kCcS, RBX, kOffFlagN);
      e_.SetccMem8(kCcE, RBX, kOffFlagZ);
    }
  }
  if (!compare) {
    if (i.rd == arm::PC) {
      // Branch by ALU result: raw value, no alignment masking (execute.cc).
      e_.StoreMem32(RBX, kOffPc, RAX);
      EmitChargeCycles(kCosts.branch_taken);
      EmitExitConst(0);
    } else {
      StoreGuestReg(i.rd, RAX);
    }
  }
}

void BlockCompiler::EmitMul(const Instruction& i) {
  EmitChargeCycles(kCosts.mul);
  LoadGuestReg(RAX, i.rm);
  LoadGuestReg(RCX, i.rn);
  e_.ImulRegReg32(RAX, RCX);
  StoreGuestReg(i.rd, RAX);
  if (i.set_flags) {
    e_.TestRegReg32(RAX, RAX);
    e_.SetccMem8(kCcS, RBX, kOffFlagN);
    e_.SetccMem8(kCcE, RBX, kOffFlagZ);
  }
}

void BlockCompiler::EmitMovwMovt(const Instruction& i) {
  EmitChargeCycles(kCosts.alu);
  const uint32_t imm16 = i.trap_imm & 0xffff;
  if (i.op == Op::kMovw) {
    e_.MovRegImm32(RAX, imm16);
  } else {
    LoadGuestReg(RAX, i.rd);
    e_.AluRegImm32(Alu::kAnd, RAX, 0xffff);
    e_.AluRegImm32(Alu::kOr, RAX, imm16 << 16);
  }
  StoreGuestReg(i.rd, RAX);
}

void BlockCompiler::EmitMemSingle(const Instruction& i, word va) {
  const bool is_load = i.op == Op::kLdr || i.op == Op::kLdrb;
  const bool is_byte = i.op == Op::kLdrb || i.op == Op::kStrb;
  EmitChargeCycles(is_load ? kCosts.load : kCosts.store);
  LoadOperandReg(RAX, i.rn, va);  // base (PC = va + 8)
  if (i.mem_reg_offset) {
    LoadGuestReg(RCX, i.rm);
    e_.AluRegReg32(i.mem_add ? Alu::kAdd : Alu::kSub, RAX, RCX);
  } else if (i.mem_imm12 != 0) {
    e_.AluRegImm32(i.mem_add ? Alu::kAdd : Alu::kSub, RAX, i.mem_imm12);
  }
  e_.MovRegReg32(RSI, RAX);
  if (is_load) {
    e_.MovRegReg64(RDI, RBP);
    e_.MovRegImm32(RDX, va);
    EmitHelperCall(reinterpret_cast<uint64_t>(is_byte ? &komodo_jit_load_byte
                                                      : &komodo_jit_load_word));
    EmitStatusCheck();
    if (!is_byte && i.rd == arm::PC) {
      e_.AluRegImm32(Alu::kAnd, RAX, ~3u);  // interworking unmodelled
      e_.StoreMem32(RBX, kOffPc, RAX);
      EmitChargeCycles(kCosts.branch_taken);
      EmitExitConst(0);
    } else {
      StoreGuestReg(i.rd, RAX);
    }
  } else {
    if (!is_byte && i.rd == arm::PC) {
      e_.MovRegImm32(RDX, va + 8);  // STR pc stores insn_addr + 8
    } else {
      LoadGuestReg(RAX, i.rd);
      e_.MovRegReg32(RDX, RAX);
    }
    e_.MovRegReg64(RDI, RBP);
    e_.MovRegImm32(RCX, va);
    EmitHelperCall(reinterpret_cast<uint64_t>(is_byte ? &komodo_jit_store_byte
                                                      : &komodo_jit_store_word));
    EmitStatusCheck();
    EmitRestartCheck(va);
  }
}

void BlockCompiler::EmitBlockTransfer(const Instruction& i, word va) {
  const bool is_load = i.op == Op::kLdm;
  const uint32_t count = static_cast<uint32_t>(__builtin_popcount(i.reg_list));
  LoadGuestReg(RAX, i.rn);
  e_.MovRegReg32(R14, RAX);  // original base, for writeback
  e_.MovRegReg32(R12, RAX);  // running transfer address
  if (i.mem_add) {
    if (i.block_pre) {
      e_.AluRegImm32(Alu::kAdd, R12, 4);
    }
  } else {
    const uint32_t down = 4 * count - (i.block_pre ? 0 : 4);
    if (down != 0) {
      e_.AluRegImm32(Alu::kSub, R12, down);
    }
  }
  // Alignment of the lowest address, checked before any per-transfer charge.
  e_.TestRegImm32(R12, 3);
  const size_t aligned = e_.JccForward(kCcE);
  e_.MovRegReg64(RDI, RBP);
  e_.MovRegImm32(RSI, static_cast<uint32_t>(arm::Exception::kDataAbort));
  e_.MovRegImm32(RDX, va);
  EmitHelperCall(reinterpret_cast<uint64_t>(&komodo_jit_fault));
  e_.ShrReg64Imm(RAX, 32);
  EmitEpilogue();
  e_.BindForward(aligned);

  for (int r = 0; r < 16; ++r) {
    if (((i.reg_list >> r) & 1) == 0) {
      continue;
    }
    EmitChargeCycles(is_load ? kCosts.load : kCosts.store);
    e_.MovRegReg32(RSI, R12);
    if (is_load) {
      e_.MovRegReg64(RDI, RBP);
      e_.MovRegImm32(RDX, va);
      EmitHelperCall(reinterpret_cast<uint64_t>(&komodo_jit_load_word));
      EmitStatusCheck();
      if (r == arm::PC) {
        e_.MovRegReg32(R13, RAX);  // committed only after writeback
      } else {
        StoreGuestReg(static_cast<Reg>(r), RAX);
      }
    } else {
      if (r == arm::PC) {
        e_.MovRegImm32(RDX, va + 8);  // STM with PC stores insn_addr + 8
      } else {
        LoadGuestReg(RAX, static_cast<Reg>(r));
        e_.MovRegReg32(RDX, RAX);
      }
      e_.MovRegReg64(RDI, RBP);
      e_.MovRegImm32(RCX, va);
      EmitHelperCall(reinterpret_cast<uint64_t>(&komodo_jit_store_word));
      EmitStatusCheck();
    }
    e_.AluRegImm32(Alu::kAdd, R12, 4);
  }

  if (i.block_wback) {
    // LDM that also loads the base register wins over writeback.
    const bool base_loaded = is_load && ((i.reg_list >> i.rn) & 1) != 0;
    if (!base_loaded) {
      e_.MovRegReg32(RAX, R14);
      e_.AluRegImm32(i.mem_add ? Alu::kAdd : Alu::kSub, RAX, 4 * count);
      StoreGuestReg(i.rn, RAX);
    }
  }
  if (!is_load) {
    EmitRestartCheck(va);
  }
  if (is_load && ((i.reg_list >> arm::PC) & 1) != 0) {
    e_.AluRegImm32(Alu::kAnd, R13, ~3u);
    e_.StoreMem32(RBX, kOffPc, R13);
    EmitChargeCycles(kCosts.branch_taken);
    EmitExitConst(0);
  }
}

void BlockCompiler::EmitBranch(const Instruction& i, word va) {
  EmitChargeCycles(kCosts.branch_taken);
  if (i.op == Op::kBx) {
    LoadGuestReg(RAX, i.rm);
    e_.AluRegImm32(Alu::kAnd, RAX, ~3u);
    e_.StoreMem32(RBX, kOffPc, RAX);
    EmitExitConst(0);
    return;
  }
  if (i.op == Op::kBl) {
    e_.MovRegImm32(RAX, va + 4);
    StoreGuestReg(arm::LR, RAX);
  }
  const word target =
      static_cast<word>(static_cast<int64_t>(va) + 8 + i.branch_offset);
  e_.StoreMemImm32(RBX, kOffPc, target);
  EmitExitConst(0);
}

void BlockCompiler::EmitInsn(const Instruction& i, word va) {
  e_.AddMem64Imm(RBX, kOffSteps, 1);
  const std::vector<size_t> fails = EmitCondFail(i.cond);

  switch (i.op) {
    case Op::kMul:
      EmitMul(i);
      break;
    case Op::kMovw:
    case Op::kMovt:
      EmitMovwMovt(i);
      break;
    case Op::kLdr:
    case Op::kStr:
    case Op::kLdrb:
    case Op::kStrb:
      EmitMemSingle(i, va);
      break;
    case Op::kLdm:
    case Op::kStm:
      EmitBlockTransfer(i, va);
      break;
    case Op::kB:
    case Op::kBl:
    case Op::kBx:
      EmitBranch(i, va);
      break;
    default:
      EmitDataProcessing(i, va);
      break;
  }

  if (i.cond != Cond::kAl) {
    if (IsTerminator(i)) {
      // The body exited; a failed condition retires as a 1-cycle fall-through.
      for (const size_t f : fails) {
        e_.BindForward(f);
      }
      EmitChargeCycles(kCosts.alu);
      e_.StoreMemImm32(RBX, kOffPc, va + 4);
      EmitExitConst(0);
    } else {
      const size_t next = e_.JmpForward();
      for (const size_t f : fails) {
        e_.BindForward(f);
      }
      EmitChargeCycles(kCosts.alu);
      e_.BindForward(next);
    }
  }
}

CompiledBlock BlockCompiler::Compile(const arm::PhysMemory& mem, arm::vaddr va,
                                     arm::paddr phys) {
  // Gather the straight-line run of translatable instructions. Blocks never
  // cross a physical page: one page-generation tag validates the whole block.
  std::vector<Instruction> insns;
  bool terminated = false;
  while (insns.size() < kMaxBlockInsns) {
    const arm::paddr p = phys + 4 * static_cast<arm::paddr>(insns.size());
    if (arm::PageBase(p) != arm::PageBase(phys)) {
      break;
    }
    const std::optional<Instruction> d = arm::Decode(mem.Read(p));
    if (!d.has_value() || !Jitable(*d)) {
      break;
    }
    insns.push_back(*d);
    if (IsTerminator(*d)) {
      terminated = true;
      break;
    }
  }
  CompiledBlock out;
  if (insns.empty()) {
    return out;
  }
  EmitPrologue();
  for (size_t k = 0; k < insns.size(); ++k) {
    EmitInsn(insns[k], va + 4 * static_cast<word>(k));
  }
  if (!terminated) {
    e_.StoreMemImm32(RBX, kOffPc, va + 4 * static_cast<word>(insns.size()));
    EmitExitConst(0);
  }
  out.code = e_.code();
  out.len_words = static_cast<uint32_t>(insns.size());
  return out;
}

}  // namespace

CompiledBlock CompileBlock(const arm::PhysMemory& mem, arm::vaddr va, arm::paddr phys) {
  BlockCompiler c;
  return c.Compile(mem, va, phys);
}

}  // namespace komodo::jit
