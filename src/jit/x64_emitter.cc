#include "src/jit/x64_emitter.h"

#include <cassert>

namespace komodo::jit {

void X64Emitter::B32(uint32_t v) {
  B(static_cast<uint8_t>(v));
  B(static_cast<uint8_t>(v >> 8));
  B(static_cast<uint8_t>(v >> 16));
  B(static_cast<uint8_t>(v >> 24));
}

void X64Emitter::B64(uint64_t v) {
  B32(static_cast<uint32_t>(v));
  B32(static_cast<uint32_t>(v >> 32));
}

void X64Emitter::Rex(bool w, int reg, int rm) {
  uint8_t rex = 0x40;
  if (w) {
    rex |= 0x08;
  }
  if (reg >= 8) {
    rex |= 0x04;
  }
  if (rm >= 8) {
    rex |= 0x01;
  }
  if (rex != 0x40) {
    B(rex);
  }
}

void X64Emitter::ModRmDisp32(int reg, int base, int32_t disp) {
  B(static_cast<uint8_t>(0x80 | ((reg & 7) << 3) | (base & 7)));
  if ((base & 7) == RSP) {
    B(0x24);  // SIB: no index, base = rsp/r12
  }
  B32(static_cast<uint32_t>(disp));
}

void X64Emitter::ModRmIndex32(int reg, int base, int index, int32_t disp) {
  assert((index & 7) != RSP);
  B(static_cast<uint8_t>(0x80 | ((reg & 7) << 3) | RSP));  // rm=100: SIB
  B(static_cast<uint8_t>(0x80 | ((index & 7) << 3) | (base & 7)));  // scale*4
  B32(static_cast<uint32_t>(disp));
}

void X64Emitter::PushR64(int r) {
  if (r >= 8) {
    B(0x41);
  }
  B(static_cast<uint8_t>(0x50 | (r & 7)));
}

void X64Emitter::PopR64(int r) {
  if (r >= 8) {
    B(0x41);
  }
  B(static_cast<uint8_t>(0x58 | (r & 7)));
}

void X64Emitter::Ret() { B(0xc3); }

void X64Emitter::CallReg(int r) {
  if (r >= 8) {
    B(0x41);
  }
  B(0xff);
  B(static_cast<uint8_t>(0xd0 | (r & 7)));  // mod=11 /2
}

size_t X64Emitter::JccForward(uint8_t cc) {
  B(0x0f);
  B(static_cast<uint8_t>(0x80 | cc));
  const size_t fixup = buf_.size();
  B32(0);
  return fixup;
}

size_t X64Emitter::JmpForward() {
  B(0xe9);
  const size_t fixup = buf_.size();
  B32(0);
  return fixup;
}

void X64Emitter::BindForward(size_t fixup) {
  const uint32_t rel = static_cast<uint32_t>(buf_.size() - (fixup + 4));
  buf_[fixup] = static_cast<uint8_t>(rel);
  buf_[fixup + 1] = static_cast<uint8_t>(rel >> 8);
  buf_[fixup + 2] = static_cast<uint8_t>(rel >> 16);
  buf_[fixup + 3] = static_cast<uint8_t>(rel >> 24);
}

void X64Emitter::MovRegImm64(int r, uint64_t v) {
  Rex(true, 0, r);
  B(static_cast<uint8_t>(0xb8 | (r & 7)));
  B64(v);
}

void X64Emitter::MovRegImm32(int r, uint32_t v) {
  Rex(false, 0, r);
  B(static_cast<uint8_t>(0xb8 | (r & 7)));
  B32(v);
}

void X64Emitter::MovRegReg32(int dst, int src) {
  Rex(false, dst, src);
  B(0x8b);
  B(static_cast<uint8_t>(0xc0 | ((dst & 7) << 3) | (src & 7)));
}

void X64Emitter::MovRegReg64(int dst, int src) {
  Rex(true, dst, src);
  B(0x8b);
  B(static_cast<uint8_t>(0xc0 | ((dst & 7) << 3) | (src & 7)));
}

void X64Emitter::XchgRegReg32(int a, int b) {
  Rex(false, a, b);
  B(0x87);
  B(static_cast<uint8_t>(0xc0 | ((a & 7) << 3) | (b & 7)));
}

void X64Emitter::LoadMem32(int dst, int base, int32_t disp) {
  Rex(false, dst, base);
  B(0x8b);
  ModRmDisp32(dst, base, disp);
}

void X64Emitter::StoreMem32(int base, int32_t disp, int src) {
  Rex(false, src, base);
  B(0x89);
  ModRmDisp32(src, base, disp);
}

void X64Emitter::StoreMemImm32(int base, int32_t disp, uint32_t imm) {
  Rex(false, 0, base);
  B(0xc7);
  ModRmDisp32(0, base, disp);
  B32(imm);
}

void X64Emitter::LoadMemZx8(int dst, int base, int32_t disp) {
  Rex(false, dst, base);
  B(0x0f);
  B(0xb6);
  ModRmDisp32(dst, base, disp);
}

void X64Emitter::LoadMem8(int dst, int base, int32_t disp) {
  assert(dst < 4 || dst >= 8);  // low byte addressable without REX tricks
  Rex(false, dst, base);
  B(0x8a);
  ModRmDisp32(dst, base, disp);
}

void X64Emitter::StoreMem8(int base, int32_t disp, int src) {
  assert(src < 4 || src >= 8);
  Rex(false, src, base);
  B(0x88);
  ModRmDisp32(src, base, disp);
}

void X64Emitter::StoreMemImm8(int base, int32_t disp, uint8_t imm) {
  Rex(false, 0, base);
  B(0xc6);
  ModRmDisp32(0, base, disp);
  B(imm);
}

void X64Emitter::LoadIndex32(int dst, int base, int index, int32_t disp) {
  Rex(false, dst, base);  // index is always < 8 here (asserted)
  assert(index < 8);
  B(0x8b);
  ModRmIndex32(dst, base, index, disp);
}

void X64Emitter::StoreIndex32(int base, int index, int32_t disp, int src) {
  assert(index < 8);
  Rex(false, src, base);
  B(0x89);
  ModRmIndex32(src, base, index, disp);
}

void X64Emitter::AluRegReg32(Alu op, int dst, int src) {
  Rex(false, dst, src);
  B(static_cast<uint8_t>((static_cast<uint8_t>(op) << 3) | 0x03));
  B(static_cast<uint8_t>(0xc0 | ((dst & 7) << 3) | (src & 7)));
}

void X64Emitter::AluRegImm32(Alu op, int r, uint32_t imm) {
  Rex(false, 0, r);
  const int32_t simm = static_cast<int32_t>(imm);
  if (simm >= -128 && simm <= 127) {
    B(0x83);
    B(static_cast<uint8_t>(0xc0 | (static_cast<uint8_t>(op) << 3) | (r & 7)));
    B(static_cast<uint8_t>(imm));
  } else {
    B(0x81);
    B(static_cast<uint8_t>(0xc0 | (static_cast<uint8_t>(op) << 3) | (r & 7)));
    B32(imm);
  }
}

void X64Emitter::TestRegReg32(int a, int b) {
  Rex(false, b, a);
  B(0x85);
  B(static_cast<uint8_t>(0xc0 | ((b & 7) << 3) | (a & 7)));
}

void X64Emitter::TestRegImm32(int r, uint32_t imm) {
  Rex(false, 0, r);
  B(0xf7);
  B(static_cast<uint8_t>(0xc0 | (r & 7)));  // /0
  B32(imm);
}

void X64Emitter::NotReg32(int r) {
  Rex(false, 0, r);
  B(0xf7);
  B(static_cast<uint8_t>(0xd0 | (r & 7)));  // /2
}

void X64Emitter::ImulRegReg32(int dst, int src) {
  Rex(false, dst, src);
  B(0x0f);
  B(0xaf);
  B(static_cast<uint8_t>(0xc0 | ((dst & 7) << 3) | (src & 7)));
}

void X64Emitter::ShiftRegImm32(Sh k, int r, uint8_t amount) {
  assert(amount >= 1 && amount <= 31);
  Rex(false, 0, r);
  B(0xc1);
  B(static_cast<uint8_t>(0xc0 | (static_cast<uint8_t>(k) << 3) | (r & 7)));
  B(amount);
}

void X64Emitter::BtRegImm32(int r, uint8_t bit) {
  Rex(false, 0, r);
  B(0x0f);
  B(0xba);
  B(static_cast<uint8_t>(0xe0 | (r & 7)));  // /4
  B(bit);
}

void X64Emitter::ShrReg64Imm(int r, uint8_t amount) {
  Rex(true, 0, r);
  B(0xc1);
  B(static_cast<uint8_t>(0xe8 | (r & 7)));  // /5
  B(amount);
}

void X64Emitter::CmpMem8Imm(int base, int32_t disp, uint8_t imm) {
  Rex(false, 0, base);
  B(0x80);
  ModRmDisp32(7, base, disp);  // /7 = cmp
  B(imm);
}

void X64Emitter::CmpReg8Mem8(int reg, int base, int32_t disp) {
  assert(reg < 4 || reg >= 8);
  Rex(false, reg, base);
  B(0x3a);
  ModRmDisp32(reg, base, disp);
}

void X64Emitter::AddMem64Imm(int base, int32_t disp, uint32_t imm) {
  Rex(true, 0, base);
  if (imm <= 127) {
    B(0x83);
    ModRmDisp32(0, base, disp);  // /0 = add
    B(static_cast<uint8_t>(imm));
  } else {
    B(0x81);
    ModRmDisp32(0, base, disp);
    B32(imm);
  }
}

void X64Emitter::SetccReg8(uint8_t cc, int reg) {
  assert(reg < 4 || reg >= 8);
  Rex(false, 0, reg);
  B(0x0f);
  B(static_cast<uint8_t>(0x90 | cc));
  B(static_cast<uint8_t>(0xc0 | (reg & 7)));
}

void X64Emitter::SetccMem8(uint8_t cc, int base, int32_t disp) {
  Rex(false, 0, base);
  B(0x0f);
  B(static_cast<uint8_t>(0x90 | cc));
  ModRmDisp32(0, base, disp);
}

}  // namespace komodo::jit
