// Internals shared by the block compiler, the runtime helpers the emitted
// code calls back into, and the engine (code cache + dispatch). Not part of
// the public JIT surface.
#ifndef SRC_JIT_JIT_INTERNAL_H_
#define SRC_JIT_JIT_INTERNAL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/arm/machine.h"
#include "src/jit/jit.h"

namespace komodo::jit {

// --- Guest-state offsets ------------------------------------------------------
// Translated code addresses MachineState fields directly as [rbx + disp].
// MachineState is not standard-layout (PhysMemory holds vectors), but GCC and
// Clang implement offsetof for it; silence the conditionally-supported
// warning locally.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
inline constexpr int32_t kOffR = offsetof(arm::MachineState, r);
inline constexpr int32_t kOffPc = offsetof(arm::MachineState, pc);
inline constexpr int32_t kOffCpsr = offsetof(arm::MachineState, cpsr);
inline constexpr int32_t kOffSpBank = offsetof(arm::MachineState, sp_banked);
inline constexpr int32_t kOffLrBank = offsetof(arm::MachineState, lr_banked);
inline constexpr int32_t kOffCycles = offsetof(arm::MachineState, cycles);
inline constexpr int32_t kOffSteps = offsetof(arm::MachineState, steps_retired);
#pragma GCC diagnostic pop

inline constexpr int32_t kOffFlagN = kOffCpsr + offsetof(arm::Psr, n);
inline constexpr int32_t kOffFlagZ = kOffCpsr + offsetof(arm::Psr, z);
inline constexpr int32_t kOffFlagC = kOffCpsr + offsetof(arm::Psr, c);
inline constexpr int32_t kOffFlagV = kOffCpsr + offsetof(arm::Psr, v);
inline constexpr int32_t kOffMode = kOffCpsr + offsetof(arm::Psr, mode);

// The emitted code treats the cycle counter as a raw uint64 at kOffCycles and
// the flag fields as raw bytes holding 0/1.
static_assert(sizeof(arm::CycleCounter) == sizeof(uint64_t),
              "CycleCounter must be a bare uint64 for JIT cycle charges");
static_assert(sizeof(bool) == 1, "Psr flags must be single bytes");
static_assert(sizeof(arm::Mode) == 1, "Mode must be byte-indexable");
static_assert(sizeof(arm::word) == 4, "guest registers must be 32-bit");

// --- Block-call ABI -----------------------------------------------------------
// Blocks are `uint64_t fn(MachineState* m /*rdi*/, JitRt* rt /*rsi*/)`.
// Prologue moves m -> rbx, rt -> rbp (both callee-saved); r12d/r13d/r14d are
// LDM/STM scratch. Return value: 0 = block done (m->pc set), 0x100 | exc =
// exception taken (TakeException already applied by a runtime helper).
struct JitRt {
  arm::MachineState* m;
  uint32_t block_phys_lo;  // physical range of the block's own code words:
  uint32_t block_phys_hi;  // a store landing here must end the block (the
                           // remaining translated tail is stale)
  uint32_t restart;        // set by store helpers: exit after this instruction
  uint32_t pad;
};

inline constexpr int32_t kRtOffRestart = offsetof(JitRt, restart);

inline constexpr uint64_t kExitExceptionBit = 0x100;

using BlockFn = uint64_t (*)(arm::MachineState*, JitRt*);

// Runtime helpers the emitted code calls (System V ABI). Each returns
// (status << 32) | value, status 0 = ok, else 0x100 | exception (already
// taken against the machine, with the architecturally preferred return
// address for `insn_addr`). Store helpers apply the live-page-table TLB
// side effect and set rt->restart when the block must not continue.
extern "C" uint64_t komodo_jit_load_word(JitRt* rt, uint32_t va, uint32_t insn_addr);
extern "C" uint64_t komodo_jit_store_word(JitRt* rt, uint32_t va, uint32_t value,
                                          uint32_t insn_addr);
extern "C" uint64_t komodo_jit_load_byte(JitRt* rt, uint32_t va, uint32_t insn_addr);
extern "C" uint64_t komodo_jit_store_byte(JitRt* rt, uint32_t va, uint32_t value,
                                          uint32_t insn_addr);
// Takes `exception` with the preferred return address and returns status<<32.
extern "C" uint64_t komodo_jit_fault(JitRt* rt, uint32_t exception, uint32_t insn_addr);

// --- Block compiler -----------------------------------------------------------

// A compiled basic block: x64 bytes plus how many A32 words it covers.
// len_words == 0 means the instruction at the head is outside the hot subset
// (the engine caches that verdict as a kInterpretOne entry).
struct CompiledBlock {
  std::vector<uint8_t> code;
  uint32_t len_words = 0;
};

inline constexpr uint32_t kMaxBlockInsns = 64;

// Decodes and translates the straight-line block starting at phys/va. Reads
// code words directly from memory; never crosses a page boundary.
CompiledBlock CompileBlock(const arm::PhysMemory& mem, arm::vaddr va, arm::paddr phys);

// --- Engine (code cache) ------------------------------------------------------

enum class BlockKind : uint8_t { kEmpty = 0, kCompiled, kInterpretOne };

struct BlockEntry {
  arm::paddr phys = 0;
  arm::vaddr va = 0;  // blocks embed va-derived constants, so the key is both
  uint64_t epoch = 0;
  size_t gen_idx = arm::PhysMemory::kNoPage;
  uint32_t gen = 0;
  uint32_t len_words = 0;
  BlockKind kind = BlockKind::kEmpty;
  BlockFn fn = nullptr;
};

class Engine {
 public:
  static constexpr size_t kTableEntries = 4096;  // power of two
  static constexpr size_t kCodeBytes = 2 * 1024 * 1024;

  // nullptr if the executable mapping cannot be created.
  static std::unique_ptr<Engine> Create();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Valid entry for (phys, va) — translating on miss or generation staleness.
  // Returns nullptr only if translation cannot be stored (cache thrash).
  BlockEntry* LookupOrTranslate(const arm::MachineState& m, arm::paddr phys,
                                arm::vaddr va, JitStats& st);

  void InvalidateAll() { ++epoch_; }

  // Visits every live (current-epoch) table entry, in table order.
  template <typename Fn>
  void ForEachResident(Fn&& fn) const {
    for (const BlockEntry& e : table_) {
      if (e.kind != BlockKind::kEmpty && e.epoch == epoch_) {
        fn(e);
      }
    }
  }

 private:
  Engine() = default;

  uint8_t* buf_ = nullptr;
  size_t used_ = 0;
  uint64_t epoch_ = 1;
  std::array<BlockEntry, kTableEntries> table_{};
};

}  // namespace komodo::jit

#endif  // SRC_JIT_JIT_INTERNAL_H_
