// Runtime helpers translated blocks call back into. Each one mirrors the
// corresponding slice of execute.cc's Step(): same translation routine, same
// fault kinds and preferred return addresses, same live-page-table store
// side effect — so a memory access behaves bit-identically whether the
// instruction was interpreted or translated.
#include <cstdint>

#include "src/arm/execute.h"
#include "src/arm/machine.h"
#include "src/jit/jit_internal.h"

namespace komodo::jit {

namespace {

uint64_t TakeFault(JitRt* rt, arm::Exception e, uint32_t insn_addr) {
  // Data aborts are the only faults the translated subset raises mid-block;
  // their preferred return address is insn_addr + 8 (DDI 0406C §B1.8.3).
  const arm::word ret =
      insn_addr + (e == arm::Exception::kDataAbort ? 8 : 4);
  rt->m->TakeException(e, ret);
  return (kExitExceptionBit | static_cast<uint64_t>(e)) << 32;
}

// Applies the post-store bookkeeping: TLB-consistency loss on stores into the
// live page table, and the restart flag when the block must not continue —
// either because the store rewrote the block's own code words (the remaining
// translated tail is stale) or because TLB consistency was just lost (the
// interpreter would assert at its very next user-mode translation, so the
// block exits and lets the dispatcher's fetch reproduce that exactly).
void AfterStore(JitRt* rt, arm::paddr phys) {
  arm::MachineState& m = *rt->m;
  const bool was_consistent = m.tlb_consistent;
  arm::NoteStoreToPhys(m, phys);
  if ((phys >= rt->block_phys_lo && phys < rt->block_phys_hi) ||
      (was_consistent && !m.tlb_consistent)) {
    rt->restart = 1;
  }
}

}  // namespace

extern "C" uint64_t komodo_jit_load_word(JitRt* rt, uint32_t va, uint32_t insn_addr) {
  arm::MachineState& m = *rt->m;
  if (!arm::IsWordAligned(va)) {
    return TakeFault(rt, arm::Exception::kDataAbort, insn_addr);
  }
  const arm::Translation tr = arm::TranslateAddress(m, va, arm::Access::kRead);
  if (!tr.ok) {
    return TakeFault(rt, arm::Exception::kDataAbort, insn_addr);
  }
  return m.mem.Read(tr.phys);
}

extern "C" uint64_t komodo_jit_store_word(JitRt* rt, uint32_t va, uint32_t value,
                                          uint32_t insn_addr) {
  arm::MachineState& m = *rt->m;
  if (!arm::IsWordAligned(va)) {
    return TakeFault(rt, arm::Exception::kDataAbort, insn_addr);
  }
  const arm::Translation tr = arm::TranslateAddress(m, va, arm::Access::kWrite);
  if (!tr.ok) {
    return TakeFault(rt, arm::Exception::kDataAbort, insn_addr);
  }
  m.mem.Write(tr.phys, value);
  AfterStore(rt, tr.phys);
  return 0;
}

extern "C" uint64_t komodo_jit_load_byte(JitRt* rt, uint32_t va, uint32_t insn_addr) {
  arm::MachineState& m = *rt->m;
  const arm::Translation tr = arm::TranslateAddress(m, va, arm::Access::kRead);
  if (!tr.ok) {
    return TakeFault(rt, arm::Exception::kDataAbort, insn_addr);
  }
  const arm::paddr word_addr = tr.phys & ~3u;
  const unsigned shift = (tr.phys & 3u) * 8;
  return (m.mem.Read(word_addr) >> shift) & 0xff;
}

extern "C" uint64_t komodo_jit_store_byte(JitRt* rt, uint32_t va, uint32_t value,
                                          uint32_t insn_addr) {
  arm::MachineState& m = *rt->m;
  const arm::Translation tr = arm::TranslateAddress(m, va, arm::Access::kWrite);
  if (!tr.ok) {
    return TakeFault(rt, arm::Exception::kDataAbort, insn_addr);
  }
  const arm::paddr word_addr = tr.phys & ~3u;
  const unsigned shift = (tr.phys & 3u) * 8;
  const arm::word old = m.mem.Read(word_addr);
  m.mem.Write(word_addr, (old & ~(0xffu << shift)) | ((value & 0xffu) << shift));
  AfterStore(rt, word_addr);
  return 0;
}

extern "C" uint64_t komodo_jit_fault(JitRt* rt, uint32_t exception, uint32_t insn_addr) {
  return TakeFault(rt, static_cast<arm::Exception>(exception), insn_addr);
}

}  // namespace komodo::jit
