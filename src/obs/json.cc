#include "src/obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace komodo::obs {

// --- Writer --------------------------------------------------------------------

void JsonWriter::Comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows its key; no comma
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) {
      out_->push_back(',');
    }
    has_elem_.back() = true;
  }
}

void JsonWriter::Escaped(std::string_view s) {
  out_->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out_->append("\\\"");
        break;
      case '\\':
        out_->append("\\\\");
        break;
      case '\n':
        out_->append("\\n");
        break;
      case '\t':
        out_->append("\\t");
        break;
      case '\r':
        out_->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_->append(buf);
        } else {
          out_->push_back(c);
        }
    }
  }
  out_->push_back('"');
}

void JsonWriter::BeginObject() {
  Comma();
  out_->push_back('{');
  has_elem_.push_back(false);
}

void JsonWriter::EndObject() {
  has_elem_.pop_back();
  out_->push_back('}');
}

void JsonWriter::BeginArray() {
  Comma();
  out_->push_back('[');
  has_elem_.push_back(false);
}

void JsonWriter::EndArray() {
  has_elem_.pop_back();
  out_->push_back(']');
}

void JsonWriter::Key(std::string_view key) {
  Comma();
  Escaped(key);
  out_->push_back(':');
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Comma();
  Escaped(value);
}

void JsonWriter::Uint(uint64_t value) {
  Comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  out_->append(buf);
}

void JsonWriter::Int(int64_t value) {
  Comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_->append(buf);
}

void JsonWriter::Double(double value) {
  Comma();
  if (!std::isfinite(value)) {
    out_->append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_->append(buf);
}

void JsonWriter::Bool(bool value) {
  Comma();
  out_->append(value ? "true" : "false");
}

void JsonWriter::Null() {
  Comma();
  out_->append("null");
}

// --- Parser --------------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : members) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse(std::string* error) {
    JsonValue v;
    if (!ParseValue(v)) {
      Report(error);
      return std::nullopt;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      err_ = "trailing characters after value";
      Report(error);
      return std::nullopt;
    }
    return v;
  }

 private:
  void Report(std::string* error) const {
    if (error != nullptr) {
      *error = "offset " + std::to_string(pos_) + ": " + (err_ ? err_ : "parse error");
    }
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(const char* why) {
    err_ = why;
    return false;
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.substr(pos_, n) != lit) {
      return Fail("invalid literal");
    }
    pos_ += n;
    return true;
  }

  bool ParseString(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("invalid \\u escape");
              }
            }
            // UTF-8 encode (surrogate pairs unsupported; the exporters never
            // emit non-BMP characters).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return Fail("invalid escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue& v) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected number");
    }
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number");
    }
    v.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool ParseValue(JsonValue& v) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        v.kind = JsonValue::Kind::kObject;
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          SkipWs();
          std::string key;
          if (!ParseString(key)) {
            return false;
          }
          SkipWs();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            return Fail("expected ':'");
          }
          ++pos_;
          JsonValue member;
          if (!ParseValue(member)) {
            return false;
          }
          v.members.emplace_back(std::move(key), std::move(member));
          SkipWs();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return Fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos_;
        v.kind = JsonValue::Kind::kArray;
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          JsonValue item;
          if (!ParseValue(item)) {
            return false;
          }
          v.items.push_back(std::move(item));
          SkipWs();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return Fail("expected ',' or ']'");
        }
      }
      case '"':
        v.kind = JsonValue::Kind::kString;
        return ParseString(v.str);
      case 't':
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return Literal("true");
      case 'f':
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return Literal("false");
      case 'n':
        v.kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(v);
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  const char* err_ = nullptr;
};

}  // namespace

std::optional<JsonValue> ParseJson(std::string_view text, std::string* error) {
  return Parser(text).Parse(error);
}

}  // namespace komodo::obs
