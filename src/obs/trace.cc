#include "src/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/obs/json.h"

namespace komodo::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSmcBegin:
      return "smc_begin";
    case EventKind::kSmcEnd:
      return "smc_end";
    case EventKind::kSvcBegin:
      return "svc_begin";
    case EventKind::kSvcEnd:
      return "svc_end";
    case EventKind::kEnclaveEnter:
      return "enclave_enter";
    case EventKind::kEnclaveResume:
      return "enclave_resume";
    case EventKind::kEnclaveExit:
      return "enclave_exit";
    case EventKind::kException:
      return "exception";
    case EventKind::kTlbFlush:
      return "tlb_flush";
  }
  return "unknown";
}

void Histogram::Add(uint64_t v) {
  ++count_;
  sum_ += v;
  if (v < min_) {
    min_ = v;
  }
  if (v > max_) {
    max_ = v;
  }
  int b = 0;
  while (v != 0) {
    ++b;
    v >>= 1;
  }
  ++buckets_[b < kBuckets ? b : kBuckets - 1];
}

Observability::Observability() {
  const char* env = std::getenv("KOMODO_TRACE");
  if (env != nullptr && (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0 ||
                         std::strcmp(env, "true") == 0)) {
    size_t capacity = kDefaultRingCapacity;
    if (const char* buf = std::getenv("KOMODO_TRACE_BUF")) {
      const unsigned long long parsed = std::strtoull(buf, nullptr, 10);
      if (parsed > 0) {
        capacity = static_cast<size_t>(parsed);
      }
    }
    Enable(capacity);
  }
}

void Observability::Enable(size_t ring_capacity) {
  enabled_ = true;
  capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  ring_.clear();
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);  // grows to capacity on demand
  Reset();
}

void Observability::Disable() {
  enabled_ = false;
  ring_.clear();
  ring_.shrink_to_fit();
}

void Observability::Reset() {
  ring_.clear();
  depth_ = 0;
  next_seq_ = 0;
  coverage_.clear();
  counters_ = Counters{};
  smc_stats_.clear();
  svc_stats_.clear();
}

uint64_t Observability::WallNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void Observability::Record(const TraceEvent& e) {
  if (!enabled_) {
    return;
  }
  ++counters_.events_recorded;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[next_seq_ % capacity_] = e;
    ++counters_.events_dropped;
  }
  ++next_seq_;
}

Observability::Pending Observability::BeginCall(EventKind kind, uint32_t call, const char* name,
                                                const uint32_t* args, int nargs,
                                                const MachineSnap& snap) {
  Pending p;
  if (!enabled_) {
    return p;
  }
  p.begin = snap;
  p.wall_begin_ns = WallNs();

  TraceEvent e;
  e.seq = next_seq_;
  e.kind = kind;
  e.depth = depth_;
  e.code = call;
  e.name = name;
  e.nargs = static_cast<uint8_t>(nargs < 0 ? 0 : (nargs > 4 ? 4 : nargs));
  for (int i = 0; i < e.nargs; ++i) {
    e.args[static_cast<size_t>(i)] = args[i];
  }
  e.cycles = snap.cycles;
  e.steps = snap.steps;
  e.wall_ns = p.wall_begin_ns;
  Record(e);

  ++depth_;
  if (kind == EventKind::kSmcBegin) {
    ++counters_.smc_calls;
  } else if (kind == EventKind::kSvcBegin) {
    ++counters_.svc_calls;
  }
  return p;
}

void Observability::Accumulate(std::map<uint32_t, CallStats>& stats, uint32_t call,
                               const char* name, uint32_t err, const Pending& pending,
                               const MachineSnap& end) {
  CallStats& s = stats[call];
  if (s.name.empty()) {
    s.name = name;
  }
  ++s.calls;
  if (err != 0) {
    ++s.errors;
  }
  const uint64_t cycles = end.cycles - pending.begin.cycles;
  s.cycles += cycles;
  s.cycle_hist.Add(cycles);
  s.steps += end.steps - pending.begin.steps;
  s.wall_ns += WallNs() - pending.wall_begin_ns;
  s.decode_hits += end.decode_hits - pending.begin.decode_hits;
  s.decode_misses += end.decode_misses - pending.begin.decode_misses;
  s.tlb_hits += end.tlb_hits - pending.begin.tlb_hits;
  s.tlb_misses += end.tlb_misses - pending.begin.tlb_misses;
  s.tlb_flushes += end.tlb_flushes - pending.begin.tlb_flushes;
  s.jit_blocks_translated += end.jit_blocks_translated - pending.begin.jit_blocks_translated;
  s.jit_block_hits += end.jit_block_hits - pending.begin.jit_block_hits;
  s.jit_block_invalidations +=
      end.jit_block_invalidations - pending.begin.jit_block_invalidations;
  s.jit_fallback_steps += end.jit_fallback_steps - pending.begin.jit_fallback_steps;
  s.jit_steps += end.jit_steps - pending.begin.jit_steps;
}

void Observability::EndCall(EventKind kind, uint32_t call, const char* name, uint32_t err,
                            uint32_t val, const Pending& pending, const MachineSnap& snap) {
  if (!enabled_) {
    return;
  }
  if (depth_ > 0) {
    --depth_;
  }
  TraceEvent e;
  e.seq = next_seq_;
  e.kind = kind;
  e.depth = depth_;
  e.code = call;
  e.name = name;
  e.err = err;
  e.val = val;
  e.cycles = snap.cycles;
  e.steps = snap.steps;
  e.wall_ns = WallNs();
  Record(e);
  if (coverage_armed_) {
    coverage_.insert(CoverageKey(kind, call, err));
  }

  Accumulate(kind == EventKind::kSmcEnd ? smc_stats_ : svc_stats_, call, name, err, pending,
             snap);
}

void Observability::Instant(EventKind kind, uint32_t code, const char* name,
                            const MachineSnap& snap, uint32_t err) {
  if (!enabled_) {
    return;
  }
  TraceEvent e;
  e.seq = next_seq_;
  e.kind = kind;
  e.depth = depth_;
  e.code = code;
  e.name = name;
  e.err = err;
  e.cycles = snap.cycles;
  e.steps = snap.steps;
  e.wall_ns = WallNs();
  Record(e);
  if (coverage_armed_) {
    coverage_.insert(CoverageKey(kind, code, err));
  }

  switch (kind) {
    case EventKind::kEnclaveEnter:
      ++counters_.enclave_entries;
      break;
    case EventKind::kEnclaveResume:
      ++counters_.enclave_resumes;
      break;
    case EventKind::kEnclaveExit:
      ++counters_.enclave_exits;
      break;
    case EventKind::kException:
      ++counters_.exceptions;
      break;
    case EventKind::kTlbFlush:
      ++counters_.tlb_flushes;
      break;
    default:
      break;
  }
}

std::vector<TraceEvent> Observability::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || next_seq_ <= capacity_) {
    out = ring_;
  } else {
    const size_t head = next_seq_ % capacity_;  // oldest surviving event
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(head), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<ptrdiff_t>(head));
  }
  return out;
}

namespace {

// Writes the "args" object shared by begin-matched complete events.
void WriteCallArgs(JsonWriter& w, const TraceEvent& begin, const TraceEvent& end) {
  w.Key("args");
  w.BeginObject();
  for (int i = 0; i < begin.nargs; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "r%d", i + 1);
    w.KV(key, static_cast<uint64_t>(begin.args[static_cast<size_t>(i)]));
  }
  w.KV("err", static_cast<uint64_t>(end.err));
  w.KV("val", static_cast<uint64_t>(end.val));
  w.KV("steps", end.steps - begin.steps);
  w.KV("wall_ns", end.wall_ns - begin.wall_ns);
  w.EndObject();
}

}  // namespace

void WriteHistogramJson(JsonWriter& w, const Histogram& h) {
  w.BeginObject();
  w.KV("count", h.count());
  w.KV("sum", h.sum());
  w.KV("min", h.min());
  w.KV("max", h.max());
  w.KV("mean", h.count() == 0 ? 0.0
                              : static_cast<double>(h.sum()) / static_cast<double>(h.count()));
  // Sparse log2 buckets as [lower_bound, count] pairs.
  w.Key("log2_buckets");
  w.BeginArray();
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const uint64_t n = h.buckets()[static_cast<size_t>(i)];
    if (n == 0) {
      continue;
    }
    w.BeginArray();
    w.Uint(i == 0 ? 0 : (1ull << (i - 1)));
    w.Uint(n);
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();
}

void WriteCallStatsJson(JsonWriter& w, const std::map<uint32_t, CallStats>& stats) {
  w.BeginArray();
  for (const auto& [call, s] : stats) {
    w.BeginObject();
    w.KV("call", static_cast<uint64_t>(call));
    w.KV("name", s.name);
    w.KV("calls", s.calls);
    w.KV("errors", s.errors);
    w.Key("cycles");
    WriteHistogramJson(w, s.cycle_hist);
    w.KV("steps", s.steps);
    w.KV("wall_ns", s.wall_ns);
    w.Key("interp_cache");
    w.BeginObject();
    w.KV("decode_hits", s.decode_hits);
    w.KV("decode_misses", s.decode_misses);
    w.KV("tlb_hits", s.tlb_hits);
    w.KV("tlb_misses", s.tlb_misses);
    w.EndObject();
    w.Key("jit");
    w.BeginObject();
    w.KV("blocks_translated", s.jit_blocks_translated);
    w.KV("block_hits", s.jit_block_hits);
    w.KV("block_invalidations", s.jit_block_invalidations);
    w.KV("fallback_steps", s.jit_fallback_steps);
    w.KV("jit_steps", s.jit_steps);
    w.EndObject();
    w.KV("tlb_flushes", s.tlb_flushes);
    w.EndObject();
  }
  w.EndArray();
}



std::string Observability::ExportChromeTrace() const {
  const std::vector<TraceEvent> events = Events();
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.KV("displayTimeUnit", "ns");
  w.Key("otherData");
  w.BeginObject();
  w.KV("clock", "simulated Cortex-A7 cycles (1 cycle shown as 1 us)");
  w.KV("schema", "komodo-trace-v1");
  w.EndObject();
  w.Key("traceEvents");
  w.BeginArray();

  // Process/thread naming metadata so Perfetto shows a labelled track.
  w.BeginObject();
  w.KV("ph", "M");
  w.KV("pid", 1);
  w.KV("tid", 1);
  w.KV("name", "process_name");
  w.Key("args");
  w.BeginObject();
  w.KV("name", "komodo-monitor");
  w.EndObject();
  w.EndObject();

  // Match begin/end pairs into complete ("X") events; the per-depth stack
  // reconstructs nesting (SVCs inside an Enter). Ends whose begins fell off
  // the ring are dropped; begins with no end (trace stopped mid-call) close
  // at the last timestamp.
  const uint64_t last_cycles = events.empty() ? 0 : events.back().cycles;
  std::vector<const TraceEvent*> stack;
  auto emit_complete = [&w](const TraceEvent& b, uint64_t end_cycles, const TraceEvent* e) {
    w.BeginObject();
    w.KV("name", b.name);
    w.KV("cat", b.kind == EventKind::kSmcBegin ? "smc" : "svc");
    w.KV("ph", "X");
    w.KV("ts", b.cycles);
    w.KV("dur", end_cycles - b.cycles);
    w.KV("pid", 1);
    w.KV("tid", 1);
    if (e != nullptr) {
      WriteCallArgs(w, b, *e);
    }
    w.EndObject();
  };
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kSmcBegin:
      case EventKind::kSvcBegin:
        stack.push_back(&e);
        break;
      case EventKind::kSmcEnd:
      case EventKind::kSvcEnd:
        if (!stack.empty()) {
          emit_complete(*stack.back(), e.cycles, &e);
          stack.pop_back();
        }
        break;
      default: {
        w.BeginObject();
        w.KV("name", e.name);
        w.KV("cat", EventKindName(e.kind));
        w.KV("ph", "i");
        w.KV("s", "t");
        w.KV("ts", e.cycles);
        w.KV("pid", 1);
        w.KV("tid", 1);
        w.Key("args");
        w.BeginObject();
        w.KV("code", static_cast<uint64_t>(e.code));
        if (e.err != 0) {
          w.KV("err", static_cast<uint64_t>(e.err));
        }
        w.KV("steps", e.steps);
        w.EndObject();
        w.EndObject();
        break;
      }
    }
  }
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    emit_complete(**it, last_cycles, nullptr);
  }
  w.EndArray();
  w.EndObject();
  return out;
}

void WriteCountersJson(JsonWriter& w, const Counters& c) {
  w.BeginObject();
  w.KV("events_recorded", c.events_recorded);
  w.KV("events_dropped", c.events_dropped);
  w.KV("smc_calls", c.smc_calls);
  w.KV("svc_calls", c.svc_calls);
  w.KV("enclave_entries", c.enclave_entries);
  w.KV("enclave_resumes", c.enclave_resumes);
  w.KV("enclave_exits", c.enclave_exits);
  w.KV("exceptions", c.exceptions);
  w.KV("tlb_flushes", c.tlb_flushes);
  w.EndObject();
}

std::string Observability::ExportMetrics() const {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.KV("schema", "komodo-metrics-v1");
  w.Key("counters");
  WriteCountersJson(w, counters_);
  w.Key("smc");
  WriteCallStatsJson(w, smc_stats_);
  w.Key("svc");
  WriteCallStatsJson(w, svc_stats_);
  w.EndObject();
  return out;
}

namespace {

bool WriteFileString(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const int rc = std::fclose(f);
  return n == content.size() && rc == 0;
}

}  // namespace

bool Observability::WriteChromeTrace(const std::string& path) const {
  return WriteFileString(path, ExportChromeTrace());
}

bool Observability::WriteMetrics(const std::string& path) const {
  return WriteFileString(path, ExportMetrics());
}

}  // namespace komodo::obs
