// Observability for the Komodo monitor (DESIGN.md §9): a ring-buffer
// structured event tracer plus monotonic counters and per-call histograms,
// with exporters for chrome://tracing JSON and a flat metrics.json.
//
// Zero overhead when disabled: every recording entry point is guarded by the
// caller on `enabled()` (a single predictable branch on the SMC path), the
// ring buffer is allocated lazily on Enable(), and nothing here ever charges
// simulated cycles — the tracer observes the cycle counter, it never moves
// it. Timestamps in exported traces are *simulated* Cortex-A7 cycles, so
// traces are deterministic run to run; wall-clock nanoseconds ride along in
// each event for host-side profiling but are excluded from determinism
// guarantees (and from the trace-determinism test).
//
// The library is standalone by design (no dependency on src/arm or
// src/core): callers pass a MachineSnap of the counters they want attributed
// — the monitor snapshots its cycle counter, retired steps, interpreter
// cache stats and TLB-flush count around each dispatched call. Instrument
// once, at the call-table dispatch; everything else follows.
//
// Activation: construct-time from the environment (KOMODO_TRACE=on|1|true,
// ring capacity via KOMODO_TRACE_BUF), or programmatically via Enable().
//
// Threading model: thread-confined, not thread-safe. Each Monitor owns one
// Observability instance, and counters/ring buffer are plain (unsynchronized)
// state — the guarantee is that an instance is only ever touched by the
// thread running its Monitor. Concurrent Worlds (the multithread suite, the
// parallel fuzz campaign's per-worker WorldPools) therefore trace
// independently with zero contention; sharing one instance across threads is
// a data race by contract. TSan (KOMODO_SANITIZE=thread) enforces this in
// scripts/check.sh's parallel fuzz leg.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace komodo::obs {

class JsonWriter;

enum class EventKind : uint8_t {
  kSmcBegin,        // code = SMC number; args = r1..r4
  kSmcEnd,          // err/val = returned r0/r1
  kSvcBegin,        // code = SVC number; args = r1..r3
  kSvcEnd,
  kEnclaveEnter,    // code = dispatcher page
  kEnclaveResume,   // code = dispatcher page
  kEnclaveExit,     // code = dispatcher page; err = teardown error
  kException,       // code = arm::Exception value taken during enclave run
  kTlbFlush,        // code = 0 full flush
};

const char* EventKindName(EventKind kind);

// A snapshot of the machine-side monotonic counters the tracer attributes to
// calls. Taken by the monitor (which can see the machine); deltas between
// the begin and end snapshots of a call become that call's cost.
struct MachineSnap {
  uint64_t cycles = 0;         // simulated cycle counter
  uint64_t steps = 0;          // retired interpreted instructions
  uint64_t decode_hits = 0;    // interpreter decode-cache stats
  uint64_t decode_misses = 0;
  uint64_t tlb_hits = 0;       // interpreter micro-TLB stats
  uint64_t tlb_misses = 0;
  uint64_t tlb_flushes = 0;    // architectural TLBIALL count
  uint64_t jit_blocks_translated = 0;  // block-JIT stats (DESIGN.md §13)
  uint64_t jit_block_hits = 0;
  uint64_t jit_block_invalidations = 0;
  uint64_t jit_fallback_steps = 0;
  uint64_t jit_steps = 0;      // steps retired inside translated blocks
};

struct TraceEvent {
  uint64_t seq = 0;       // monotonic, survives ring wrap (drop detection)
  EventKind kind = EventKind::kSmcBegin;
  uint8_t depth = 0;      // call nesting (SVCs inside an Enter have depth 1)
  uint8_t nargs = 0;
  uint32_t code = 0;      // call number / dispatcher page / exception kind
  const char* name = "";  // static string from the call registry
  std::array<uint32_t, 4> args{};
  uint32_t err = 0;
  uint32_t val = 0;
  uint64_t cycles = 0;    // simulated cycles at the event
  uint64_t steps = 0;
  uint64_t wall_ns = 0;   // host monotonic clock; nondeterministic
};

// log2-bucketed histogram: bucket i counts values v with 2^(i-1) <= v < 2^i
// (bucket 0 counts v == 0).
class Histogram {
 public:
  static constexpr int kBuckets = 41;

  void Add(uint64_t v);
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

  bool operator==(const Histogram&) const = default;

 private:
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
  std::array<uint64_t, kBuckets> buckets_{};
};

// Per-call accumulated statistics (one per SMC/SVC number actually seen).
struct CallStats {
  std::string name;
  uint64_t calls = 0;
  uint64_t errors = 0;        // calls returning err != 0
  uint64_t cycles = 0;        // simulated cycles across all calls
  uint64_t steps = 0;
  uint64_t wall_ns = 0;
  Histogram cycle_hist;       // per-call simulated cycles
  uint64_t decode_hits = 0;   // interp-cache activity attributed to the call
  uint64_t decode_misses = 0;
  uint64_t tlb_hits = 0;
  uint64_t tlb_misses = 0;
  uint64_t tlb_flushes = 0;
  uint64_t jit_blocks_translated = 0;  // block-JIT activity for the call
  uint64_t jit_block_hits = 0;
  uint64_t jit_block_invalidations = 0;
  uint64_t jit_fallback_steps = 0;
  uint64_t jit_steps = 0;
};

struct Counters {
  uint64_t events_recorded = 0;
  uint64_t events_dropped = 0;  // ring-wrap overwrites
  uint64_t smc_calls = 0;
  uint64_t svc_calls = 0;
  uint64_t enclave_entries = 0;
  uint64_t enclave_resumes = 0;
  uint64_t enclave_exits = 0;
  uint64_t exceptions = 0;
  uint64_t tlb_flushes = 0;
};

// komodo-metrics-v1 building-block serializers. Exposed so layers above the
// monitor (the serve daemon's request-latency histograms and queue counters)
// can embed their own sections in the same document format the validator
// understands, instead of inventing a parallel schema.
void WriteHistogramJson(JsonWriter& w, const Histogram& h);
void WriteCallStatsJson(JsonWriter& w, const std::map<uint32_t, CallStats>& stats);
void WriteCountersJson(JsonWriter& w, const Counters& c);

class Observability {
 public:
  static constexpr size_t kDefaultRingCapacity = 65536;

  // Reads KOMODO_TRACE / KOMODO_TRACE_BUF; disabled unless the environment
  // opts in.
  Observability();

  bool enabled() const { return enabled_; }
  void Enable(size_t ring_capacity = kDefaultRingCapacity);
  void Disable();
  // Clears events, counters and stats; keeps the enabled state and capacity.
  void Reset();

  // Coverage export hook (evolve-mode fuzzing, DESIGN.md §15): while armed
  // (and enabled), every completed call and every instant folds a packed
  // (kind, code, err) key into a distinct-key set the fuzzer harvests. Keys
  // are inserted at EndCall/Instant time, never read back from the ring, so
  // the ring capacity (KOMODO_TRACE_BUF) cannot change the set. Reset()
  // clears the keys but keeps the armed state, mirroring `enabled`.
  static uint64_t CoverageKey(EventKind kind, uint32_t code, uint32_t err) {
    return (static_cast<uint64_t>(kind) << 56) |
           (static_cast<uint64_t>(code & 0xffffffu) << 32) | static_cast<uint64_t>(err);
  }
  void ArmCoverage() {
    coverage_armed_ = true;
    coverage_.clear();
  }
  void DisarmCoverage() {
    coverage_armed_ = false;
    coverage_.clear();
  }
  bool coverage_armed() const { return coverage_armed_; }
  const std::set<uint64_t>& coverage_keys() const { return coverage_; }

  // Begin/End bracket one dispatched call. The returned Pending carries the
  // begin-side snapshots and must be handed back to EndCall. All recording
  // methods are no-ops when disabled (callers also guard on enabled() so the
  // snapshot itself is not taken).
  struct Pending {
    MachineSnap begin;
    uint64_t wall_begin_ns = 0;
  };
  Pending BeginCall(EventKind kind, uint32_t call, const char* name, const uint32_t* args,
                    int nargs, const MachineSnap& snap);
  void EndCall(EventKind kind, uint32_t call, const char* name, uint32_t err, uint32_t val,
               const Pending& pending, const MachineSnap& snap);
  // Point event (enclave lifecycle, exceptions, TLB flushes).
  void Instant(EventKind kind, uint32_t code, const char* name, const MachineSnap& snap,
               uint32_t err = 0);

  const Counters& counters() const { return counters_; }
  // Buffered events, oldest first (at most the ring capacity; earlier events
  // were dropped and counted in counters().events_dropped).
  std::vector<TraceEvent> Events() const;
  const std::map<uint32_t, CallStats>& smc_stats() const { return smc_stats_; }
  const std::map<uint32_t, CallStats>& svc_stats() const { return svc_stats_; }

  // chrome://tracing / Perfetto "Trace Event Format" JSON: complete ("X")
  // events for calls, instant ("i") events for the rest; ts/dur are
  // simulated cycles presented as microseconds.
  std::string ExportChromeTrace() const;
  // Flat metrics (schema "komodo-metrics-v1"): global counters plus per-SMC
  // and per-SVC cycle histograms and interp-cache attribution.
  std::string ExportMetrics() const;
  bool WriteChromeTrace(const std::string& path) const;
  bool WriteMetrics(const std::string& path) const;

 private:
  void Record(const TraceEvent& e);
  void Accumulate(std::map<uint32_t, CallStats>& stats, uint32_t call, const char* name,
                  uint32_t err, const Pending& pending, const MachineSnap& end);
  static uint64_t WallNs();

  bool enabled_ = false;
  bool coverage_armed_ = false;
  uint8_t depth_ = 0;
  size_t capacity_ = 0;
  uint64_t next_seq_ = 0;
  std::set<uint64_t> coverage_;
  std::vector<TraceEvent> ring_;
  Counters counters_;
  std::map<uint32_t, CallStats> smc_stats_;
  std::map<uint32_t, CallStats> svc_stats_;
};

}  // namespace komodo::obs

#endif  // SRC_OBS_TRACE_H_
