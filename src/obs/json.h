// Minimal JSON support for the observability exporters and the bench/metrics
// schema validators: a streaming writer (always emits valid JSON) and a
// strict recursive-descent parser. Deliberately dependency-free — the obs
// library sits below every other Komodo component and must not pull the ARM
// model or monitor in.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace komodo::obs {

// Appends JSON tokens to a string, inserting commas and escaping strings.
// Usage is push-down: Begin/End calls must nest; Key() is required before
// every value inside an object.
class JsonWriter {
 public:
  explicit JsonWriter(std::string* out) : out_(out) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view key);
  void String(std::string_view value);
  void Uint(uint64_t value);
  void Int(int64_t value);
  void Double(double value);  // non-finite values emit null
  void Bool(bool value);
  void Null();

  // Key/value conveniences for the common object-member case.
  void KV(std::string_view key, std::string_view value) { Key(key), String(value); }
  void KV(std::string_view key, const char* value) { Key(key), String(value); }
  void KV(std::string_view key, uint64_t value) { Key(key), Uint(value); }
  void KV(std::string_view key, int value) { Key(key), Int(value); }
  void KV(std::string_view key, double value) { Key(key), Double(value); }
  void KV(std::string_view key, bool value) { Key(key), Bool(value); }

 private:
  void Comma();
  void Escaped(std::string_view s);

  std::string* out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> has_elem_;
  bool after_key_ = false;
};

// Parsed JSON value. Object members keep insertion order (the exporters'
// output is deterministic and tests compare it structurally).
struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsNumber() const { return kind == Kind::kNumber; }

  // Object-member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

// Strict parser: rejects trailing garbage, comments, and unterminated
// constructs. On failure returns nullopt and, when `error` is non-null,
// stores a byte offset + message.
std::optional<JsonValue> ParseJson(std::string_view text, std::string* error = nullptr);

}  // namespace komodo::obs

#endif  // SRC_OBS_JSON_H_
