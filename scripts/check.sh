#!/usr/bin/env bash
# Pre-merge gate: tier-1 build + tests, ASan+UBSan and TSan builds of the
# fuzz path, and the komodo-lint static analysis of every shipped enclave
# program. Any failure — including a single lint finding — fails the script.
#
# Usage: scripts/check.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")/.."

# Prefer Ninja for fresh build trees; an already-configured tree keeps
# whatever generator it was created with.
generator_for() {
  if [[ ! -f "$1/CMakeCache.txt" ]] && command -v ninja >/dev/null 2>&1; then
    echo "-G Ninja"
  fi
}

JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_SANITIZERS=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== [1/9] tier-1: configure + build ==="
cmake -B build -S . $(generator_for build) -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build -j "$JOBS"

echo "=== [2/9] tier-1: ctest ==="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [3/9] tier-1: ctest with interpreter caches disabled ==="
# The fast-path caches (DESIGN.md §8) must be architecturally invisible;
# the whole suite has to pass with them off as well.
KOMODO_INTERP_CACHE=off ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [4/9] tier-1: ctest with tracing enabled ==="
# The tracer (DESIGN.md §9) must be architecturally invisible too: the whole
# suite — including the cycle-regression test — has to pass with every
# monitor tracing into a live ring buffer.
KOMODO_TRACE=on ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [5/9] bench smoke (cached/uncached invisibility check) ==="
ctest --test-dir build -L bench-smoke --output-on-failure

echo "=== [6/9] bench/trace JSON artifacts validate ==="
# The bench-smoke runs above emitted komodo-bench-v1 / komodo-metrics-v1 /
# chrome-trace artifacts into build/bench; a drifting emitter fails here.
./build/tools/komodo-benchjson build/bench/BENCH_*.json \
  build/bench/METRICS_fig5_notary.json
./build/tools/komodo-benchjson --schema chrome build/bench/TRACE_fig5_notary.json

echo "=== [7/9] komodo-lint: shipped programs + fixtures ==="
./build/tools/komodo-lint --check-shipped
./build/tools/komodo-lint --check-fixtures

echo "=== [8/9] komodo-fuzz smoke (fixed seed, all oracles, determinism) ==="
# A short fixed-seed campaign per oracle (DESIGN.md §10). Run twice; stdout —
# including the campaign-hash over every generated trace and verdict — must be
# byte-identical, or the fuzzer has lost replayability.
FUZZ_ARGS=(--seed 20260807 --calls 400 --trace-len 60 --out build)
./build/tools/komodo-fuzz "${FUZZ_ARGS[@]}" 2>/dev/null > build/fuzz-smoke-1.out
./build/tools/komodo-fuzz "${FUZZ_ARGS[@]}" 2>/dev/null > build/fuzz-smoke-2.out
cmp build/fuzz-smoke-1.out build/fuzz-smoke-2.out \
  || { echo "komodo-fuzz: nondeterministic campaign output" >&2; exit 1; }
grep "^campaign-hash " build/fuzz-smoke-1.out

echo "=== [9/9] komodo-fuzz parallel determinism (--jobs 1 vs --jobs 8) ==="
# The sharded campaign hash (DESIGN.md §11) is defined to be independent of
# the worker count; serial and 8-way stdout must be byte-identical.
./build/tools/komodo-fuzz "${FUZZ_ARGS[@]}" --jobs 8 2>/dev/null \
  > build/fuzz-smoke-jobs8.out
cmp build/fuzz-smoke-1.out build/fuzz-smoke-jobs8.out \
  || { echo "komodo-fuzz: --jobs changed the campaign output" >&2; exit 1; }

if [[ "$SKIP_SANITIZERS" == 1 ]]; then
  echo "=== sanitizers: skipped (--skip-sanitizers) ==="
else
  echo "=== ASan+UBSan build + ctest ==="
  cmake -B build-asan -S . $(generator_for build-asan) \
    -DKOMODO_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
  echo "=== ASan+UBSan komodo-fuzz smoke ==="
  ./build-asan/tools/komodo-fuzz --seed 20260807 --calls 150 --trace-len 40 \
    --out build-asan >/dev/null

  echo "=== TSan komodo-fuzz parallel smoke ==="
  # Thread sanitizer over the parallel campaign: per-worker world pools,
  # thread-local inject flags and the outcome-slot handoff must all be
  # race-free, and the parallel run must still reproduce the serial hash.
  cmake -B build-tsan -S . $(generator_for build-tsan) \
    -DKOMODO_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target komodo-fuzz
  TSAN_FUZZ_ARGS=(--seed 20260807 --calls 150 --trace-len 40 --out build-tsan)
  ./build-tsan/tools/komodo-fuzz "${TSAN_FUZZ_ARGS[@]}" --jobs 1 2>/dev/null \
    > build-tsan/fuzz-smoke-serial.out
  ./build-tsan/tools/komodo-fuzz "${TSAN_FUZZ_ARGS[@]}" --jobs 8 2>/dev/null \
    > build-tsan/fuzz-smoke-jobs8.out
  cmp build-tsan/fuzz-smoke-serial.out build-tsan/fuzz-smoke-jobs8.out \
    || { echo "komodo-fuzz: --jobs changed the campaign output under TSan" >&2; exit 1; }
fi

# clang-tidy is optional: the reference container only ships gcc.
if command -v clang-tidy >/dev/null 2>&1 && [[ -f build/compile_commands.json ]]; then
  echo "=== extra: clang-tidy (src/core src/spec src/analysis) ==="
  clang-tidy -p build --quiet \
    src/core/*.cc src/spec/*.cc src/analysis/*.cc
else
  echo "=== extra: clang-tidy not found; skipping (config: .clang-tidy) ==="
fi

echo "OK: all checks passed"
