#!/usr/bin/env bash
# Pre-merge gate: tier-1 build + tests, ASan+UBSan and TSan builds of the
# fuzz path, the komodo-lint static analysis of every shipped enclave
# program, and the komodo-verify exhaustive small-world closure at its
# pinned hash. Any failure — including a single lint finding — fails the
# script.
#
# Usage: scripts/check.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")/.."

# Prefer Ninja for fresh build trees; an already-configured tree keeps
# whatever generator it was created with.
generator_for() {
  if [[ ! -f "$1/CMakeCache.txt" ]] && command -v ninja >/dev/null 2>&1; then
    echo "-G Ninja"
  fi
}

JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_SANITIZERS=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== [1/12] tier-1: configure + build ==="
cmake -B build -S . $(generator_for build) -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build -j "$JOBS"

echo "=== [2/12] tier-1: ctest ==="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [3/12] tier-1: ctest with interpreter caches disabled ==="
# The fast-path caches (DESIGN.md §8) must be architecturally invisible;
# the whole suite has to pass with them off as well.
KOMODO_INTERP_CACHE=off ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [3b/12] tier-1: ctest with the block JIT disabled ==="
# The A32→x64 translator (DESIGN.md §13) defaults on where supported, so the
# plain run above already exercises it; this leg pins the interpreter-only
# escape hatch, and the combination below the fully stripped configuration.
KOMODO_JIT=off ctest --test-dir build --output-on-failure -j "$JOBS"
KOMODO_JIT=off KOMODO_INTERP_CACHE=off \
  ctest --test-dir build --output-on-failure -j "$JOBS" -R 'cycle_regression_test|interp_diff_test|jit_test'

echo "=== [4/12] tier-1: ctest with tracing enabled ==="
# The tracer (DESIGN.md §9) must be architecturally invisible too: the whole
# suite — including the cycle-regression test — has to pass with every
# monitor tracing into a live ring buffer.
KOMODO_TRACE=on ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [5/12] bench smoke (cached/uncached invisibility check) ==="
ctest --test-dir build -L bench-smoke --output-on-failure

echo "=== [6/12] bench/trace JSON artifacts validate ==="
# The bench-smoke runs above emitted komodo-bench-v1 / komodo-metrics-v1 /
# chrome-trace artifacts into build/bench; a drifting emitter fails here.
./build/tools/komodo-benchjson build/bench/BENCH_*.json \
  build/bench/METRICS_fig5_notary.json
./build/tools/komodo-benchjson --schema chrome build/bench/TRACE_fig5_notary.json

echo "=== [7/12] komodo-serve: daemon smoke (batching, eviction, line protocol) ==="
# The scripted demo exercises batched submission, a typed timeout and an
# eviction/rebuild, and exits nonzero if any expectation fails. The stdin
# leg drives the line protocol end to end and must produce exactly the
# expected transcript. Both metrics documents must validate, including the
# embedded "serve" section.
./build/tools/komodo-serve --demo --metrics-out build/serve-demo-metrics.json \
  > build/serve-demo.out
printf 'create counter\nsubmit 1 5\nsubmit 1 6\nwait 2\ndestroy 1\nquit\n' \
  | ./build/tools/komodo-serve --stdin --metrics-out build/serve-stdin-metrics.json \
  > build/serve-stdin.out
printf 'session 1\nrequest 1\nrequest 2\nresult 2 ok 11\ndestroyed 1 dropped 0\nwrote build/serve-stdin-metrics.json\n' \
  | cmp - build/serve-stdin.out \
  || { echo "komodo-serve: stdin transcript drifted" >&2; exit 1; }
./build/tools/komodo-benchjson build/serve-demo-metrics.json build/serve-stdin-metrics.json
# Seeded load generator must be deterministic: same seed, same stdout.
./build/tools/komodo-serve --load --sessions 40 --requests 400 --budget 28 \
  > build/serve-load-1.out
./build/tools/komodo-serve --load --sessions 40 --requests 400 --budget 28 \
  > build/serve-load-2.out
cmp build/serve-load-1.out build/serve-load-2.out \
  || { echo "komodo-serve: nondeterministic load run" >&2; exit 1; }

echo "=== [8/12] komodo-lint: shipped programs + fixtures ==="
./build/tools/komodo-lint --check-shipped
./build/tools/komodo-lint --check-fixtures

echo "=== [9/12] komodo-verify: exhaustive small-world closure ==="
# The model checker (DESIGN.md §12) must close the default small world with
# all three obligations holding, byte-identically across runs, and at the
# pinned closure hash — any drift in the PageDb serialization, the symmetry
# quotient, or a spec guard shows up here before it reaches a reviewer.
# Re-pin the hash (and the EXPERIMENTS.md table) when a change to the spec
# or canon serialization is *intended*.
VERIFY_CLOSURE_HASH=99065585178cb71f885bfa8ba99bf856dc77b6245624a671f044a030b2640e31
./build/tools/komodo-verify --world small \
  --bench-out build/bench/BENCH_verify.json 2>/dev/null > build/verify-small-1.out
./build/tools/komodo-verify --world small 2>/dev/null > build/verify-small-2.out
cmp <(grep -v -e '^wrote ' -e '^$' build/verify-small-1.out) \
    <(grep -v '^$' build/verify-small-2.out) \
  || { echo "komodo-verify: nondeterministic exploration output" >&2; exit 1; }
grep -q "^closure-hash ${VERIFY_CLOSURE_HASH}\$" build/verify-small-1.out \
  || { echo "komodo-verify: closure hash drifted from the pinned value" >&2; exit 1; }
./build/tools/komodo-benchjson build/bench/BENCH_verify.json

echo "=== [10/12] komodo-fuzz smoke (fixed seed, all oracles, determinism) ==="
# A short fixed-seed campaign per oracle (DESIGN.md §10). Run twice; stdout —
# including the campaign-hash over every generated trace and verdict — must be
# byte-identical, or the fuzzer has lost replayability. The interp oracle is
# a three-way bisimulation (uncached / cached / JIT, DESIGN.md §13), so this
# smoke is also the JIT's randomized gate.
FUZZ_ARGS=(--seed 20260807 --calls 400 --trace-len 60 --out build)
./build/tools/komodo-fuzz "${FUZZ_ARGS[@]}" 2>/dev/null > build/fuzz-smoke-1.out
./build/tools/komodo-fuzz "${FUZZ_ARGS[@]}" 2>/dev/null > build/fuzz-smoke-2.out
cmp build/fuzz-smoke-1.out build/fuzz-smoke-2.out \
  || { echo "komodo-fuzz: nondeterministic campaign output" >&2; exit 1; }
grep "^campaign-hash " build/fuzz-smoke-1.out

echo "=== [11/12] komodo-fuzz parallel determinism (--jobs 1 vs --jobs 8) ==="
# The sharded campaign hash (DESIGN.md §11) is defined to be independent of
# the worker count; serial and 8-way stdout must be byte-identical.
./build/tools/komodo-fuzz "${FUZZ_ARGS[@]}" --jobs 8 2>/dev/null \
  > build/fuzz-smoke-jobs8.out
cmp build/fuzz-smoke-1.out build/fuzz-smoke-jobs8.out \
  || { echo "komodo-fuzz: --jobs changed the campaign output" >&2; exit 1; }

echo "=== [12/12] komodo-fuzz evolve smoke (coverage-guided, pinned v3 hash) ==="
# Coverage-guided corpus evolution (DESIGN.md §15) at a pinned config: the v3
# campaign hash covers every trace, verdict, coverage gain and the final
# corpus digests, must match the pinned value, and must be independent of
# --jobs. Re-pin when a change to the generator, mutators or coverage
# features is *intended* (the bench acceptance gate separately requires
# evolve to beat blind coverage at equal budget).
EVOLVE_HASH=6b26c4ccebdfa30ef68914062b305ea3f4e6896d427d3b5792126ac574e4ba9e
EVOLVE_ARGS=(--mode evolve --seed 20260807 --calls 400 --trace-len 30
             --shards 4 --rounds 3 --max-corpus 32 --out build)
./build/tools/komodo-fuzz "${EVOLVE_ARGS[@]}" 2>/dev/null > build/fuzz-evolve-1.out
./build/tools/komodo-fuzz "${EVOLVE_ARGS[@]}" --jobs 8 2>/dev/null \
  > build/fuzz-evolve-jobs8.out
cmp build/fuzz-evolve-1.out build/fuzz-evolve-jobs8.out \
  || { echo "komodo-fuzz: --jobs changed the evolve campaign output" >&2; exit 1; }
grep -q "^campaign-hash ${EVOLVE_HASH}\$" build/fuzz-evolve-1.out \
  || { echo "komodo-fuzz: evolve campaign hash drifted from the pinned value" >&2; exit 1; }
grep "^coverage-curve " build/fuzz-evolve-1.out
# CLI numeric parsing is strict: trailing junk and non-numbers must be
# rejected with a clear error, not silently truncated to a prefix.
if ./build/tools/komodo-fuzz --calls 10x 2>/dev/null; then
  echo "komodo-fuzz: accepted malformed --calls 10x" >&2; exit 1
fi
if ./build/tools/komodo-fuzz --seed abc 2>/dev/null; then
  echo "komodo-fuzz: accepted malformed --seed abc" >&2; exit 1
fi

if [[ "$SKIP_SANITIZERS" == 1 ]]; then
  echo "=== sanitizers: skipped (--skip-sanitizers) ==="
else
  echo "=== ASan+UBSan build + ctest ==="
  cmake -B build-asan -S . $(generator_for build-asan) \
    -DKOMODO_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
  echo "=== ASan+UBSan komodo-fuzz smoke ==="
  ./build-asan/tools/komodo-fuzz --seed 20260807 --calls 150 --trace-len 40 \
    --out build-asan >/dev/null
  echo "=== ASan+UBSan komodo-fuzz evolve smoke ==="
  # The mutation/coverage/corpus path under ASan, at the same pinned hash as
  # the plain build: instrumented and plain campaigns must agree byte for
  # byte.
  ./build-asan/tools/komodo-fuzz --mode evolve --seed 20260807 --calls 400 \
    --trace-len 30 --shards 4 --rounds 3 --max-corpus 32 --out build-asan \
    2>/dev/null > build-asan/fuzz-evolve.out
  grep -q "^campaign-hash ${EVOLVE_HASH}\$" build-asan/fuzz-evolve.out \
    || { echo "komodo-fuzz: ASan evolve hash differs from plain build" >&2; exit 1; }

  echo "=== ASan+UBSan komodo-verify small-world closure ==="
  # The instrumented build must reach the same closure: a hash mismatch here
  # means the exploration depends on memory it shouldn't be reading.
  ./build-asan/tools/komodo-verify --world small 2>/dev/null \
    > build-asan/verify-small.out
  grep -q "^closure-hash ${VERIFY_CLOSURE_HASH}\$" build-asan/verify-small.out \
    || { echo "komodo-verify: ASan closure hash differs from plain build" >&2; exit 1; }

  echo "=== TSan komodo-fuzz parallel smoke ==="
  # Thread sanitizer over the parallel campaign: per-worker world pools,
  # thread-local inject flags and the outcome-slot handoff must all be
  # race-free, and the parallel run must still reproduce the serial hash.
  cmake -B build-tsan -S . $(generator_for build-tsan) \
    -DKOMODO_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target komodo-fuzz
  TSAN_FUZZ_ARGS=(--seed 20260807 --calls 150 --trace-len 40 --out build-tsan)
  ./build-tsan/tools/komodo-fuzz "${TSAN_FUZZ_ARGS[@]}" --jobs 1 2>/dev/null \
    > build-tsan/fuzz-smoke-serial.out
  ./build-tsan/tools/komodo-fuzz "${TSAN_FUZZ_ARGS[@]}" --jobs 8 2>/dev/null \
    > build-tsan/fuzz-smoke-jobs8.out
  cmp build-tsan/fuzz-smoke-serial.out build-tsan/fuzz-smoke-jobs8.out \
    || { echo "komodo-fuzz: --jobs changed the campaign output under TSan" >&2; exit 1; }
fi

# clang-tidy is optional: the reference container only ships gcc.
if command -v clang-tidy >/dev/null 2>&1 && [[ -f build/compile_commands.json ]]; then
  echo "=== extra: clang-tidy (src/core src/spec src/analysis src/verify src/jit src/serve src/fuzz) ==="
  clang-tidy -p build --quiet \
    src/core/*.cc src/spec/*.cc src/analysis/*.cc src/verify/*.cc src/jit/*.cc src/serve/*.cc \
    src/fuzz/*.cc
else
  echo "=== extra: clang-tidy not found; skipping (config: .clang-tidy) ==="
fi

echo "OK: all checks passed"
