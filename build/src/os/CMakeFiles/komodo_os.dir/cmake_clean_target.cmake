file(REMOVE_RECURSE
  "libkomodo_os.a"
)
