file(REMOVE_RECURSE
  "CMakeFiles/komodo_os.dir/adversary.cc.o"
  "CMakeFiles/komodo_os.dir/adversary.cc.o.d"
  "CMakeFiles/komodo_os.dir/os.cc.o"
  "CMakeFiles/komodo_os.dir/os.cc.o.d"
  "libkomodo_os.a"
  "libkomodo_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/komodo_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
