# Empty dependencies file for komodo_os.
# This may be replaced when dependencies are built.
