# Empty compiler generated dependencies file for komodo_arm.
# This may be replaced when dependencies are built.
