file(REMOVE_RECURSE
  "libkomodo_arm.a"
)
