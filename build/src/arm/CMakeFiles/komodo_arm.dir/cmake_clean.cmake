file(REMOVE_RECURSE
  "CMakeFiles/komodo_arm.dir/assembler.cc.o"
  "CMakeFiles/komodo_arm.dir/assembler.cc.o.d"
  "CMakeFiles/komodo_arm.dir/execute.cc.o"
  "CMakeFiles/komodo_arm.dir/execute.cc.o.d"
  "CMakeFiles/komodo_arm.dir/isa.cc.o"
  "CMakeFiles/komodo_arm.dir/isa.cc.o.d"
  "CMakeFiles/komodo_arm.dir/machine.cc.o"
  "CMakeFiles/komodo_arm.dir/machine.cc.o.d"
  "CMakeFiles/komodo_arm.dir/memory.cc.o"
  "CMakeFiles/komodo_arm.dir/memory.cc.o.d"
  "CMakeFiles/komodo_arm.dir/page_table.cc.o"
  "CMakeFiles/komodo_arm.dir/page_table.cc.o.d"
  "CMakeFiles/komodo_arm.dir/psr.cc.o"
  "CMakeFiles/komodo_arm.dir/psr.cc.o.d"
  "libkomodo_arm.a"
  "libkomodo_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/komodo_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
