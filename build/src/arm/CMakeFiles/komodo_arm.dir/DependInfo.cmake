
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arm/assembler.cc" "src/arm/CMakeFiles/komodo_arm.dir/assembler.cc.o" "gcc" "src/arm/CMakeFiles/komodo_arm.dir/assembler.cc.o.d"
  "/root/repo/src/arm/execute.cc" "src/arm/CMakeFiles/komodo_arm.dir/execute.cc.o" "gcc" "src/arm/CMakeFiles/komodo_arm.dir/execute.cc.o.d"
  "/root/repo/src/arm/isa.cc" "src/arm/CMakeFiles/komodo_arm.dir/isa.cc.o" "gcc" "src/arm/CMakeFiles/komodo_arm.dir/isa.cc.o.d"
  "/root/repo/src/arm/machine.cc" "src/arm/CMakeFiles/komodo_arm.dir/machine.cc.o" "gcc" "src/arm/CMakeFiles/komodo_arm.dir/machine.cc.o.d"
  "/root/repo/src/arm/memory.cc" "src/arm/CMakeFiles/komodo_arm.dir/memory.cc.o" "gcc" "src/arm/CMakeFiles/komodo_arm.dir/memory.cc.o.d"
  "/root/repo/src/arm/page_table.cc" "src/arm/CMakeFiles/komodo_arm.dir/page_table.cc.o" "gcc" "src/arm/CMakeFiles/komodo_arm.dir/page_table.cc.o.d"
  "/root/repo/src/arm/psr.cc" "src/arm/CMakeFiles/komodo_arm.dir/psr.cc.o" "gcc" "src/arm/CMakeFiles/komodo_arm.dir/psr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
