file(REMOVE_RECURSE
  "libkomodo_core.a"
)
