file(REMOVE_RECURSE
  "CMakeFiles/komodo_core.dir/monitor.cc.o"
  "CMakeFiles/komodo_core.dir/monitor.cc.o.d"
  "CMakeFiles/komodo_core.dir/monitor_exec.cc.o"
  "CMakeFiles/komodo_core.dir/monitor_exec.cc.o.d"
  "CMakeFiles/komodo_core.dir/pagedb.cc.o"
  "CMakeFiles/komodo_core.dir/pagedb.cc.o.d"
  "libkomodo_core.a"
  "libkomodo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/komodo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
