
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/monitor.cc" "src/core/CMakeFiles/komodo_core.dir/monitor.cc.o" "gcc" "src/core/CMakeFiles/komodo_core.dir/monitor.cc.o.d"
  "/root/repo/src/core/monitor_exec.cc" "src/core/CMakeFiles/komodo_core.dir/monitor_exec.cc.o" "gcc" "src/core/CMakeFiles/komodo_core.dir/monitor_exec.cc.o.d"
  "/root/repo/src/core/pagedb.cc" "src/core/CMakeFiles/komodo_core.dir/pagedb.cc.o" "gcc" "src/core/CMakeFiles/komodo_core.dir/pagedb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arm/CMakeFiles/komodo_arm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/komodo_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
