# Empty compiler generated dependencies file for komodo_core.
# This may be replaced when dependencies are built.
