file(REMOVE_RECURSE
  "CMakeFiles/komodo_sgx.dir/sgx_model.cc.o"
  "CMakeFiles/komodo_sgx.dir/sgx_model.cc.o.d"
  "libkomodo_sgx.a"
  "libkomodo_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/komodo_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
