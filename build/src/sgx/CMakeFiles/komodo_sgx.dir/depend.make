# Empty dependencies file for komodo_sgx.
# This may be replaced when dependencies are built.
