file(REMOVE_RECURSE
  "libkomodo_sgx.a"
)
