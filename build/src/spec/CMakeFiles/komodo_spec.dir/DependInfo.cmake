
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/abstract_state.cc" "src/spec/CMakeFiles/komodo_spec.dir/abstract_state.cc.o" "gcc" "src/spec/CMakeFiles/komodo_spec.dir/abstract_state.cc.o.d"
  "/root/repo/src/spec/equivalence.cc" "src/spec/CMakeFiles/komodo_spec.dir/equivalence.cc.o" "gcc" "src/spec/CMakeFiles/komodo_spec.dir/equivalence.cc.o.d"
  "/root/repo/src/spec/extract.cc" "src/spec/CMakeFiles/komodo_spec.dir/extract.cc.o" "gcc" "src/spec/CMakeFiles/komodo_spec.dir/extract.cc.o.d"
  "/root/repo/src/spec/invariants.cc" "src/spec/CMakeFiles/komodo_spec.dir/invariants.cc.o" "gcc" "src/spec/CMakeFiles/komodo_spec.dir/invariants.cc.o.d"
  "/root/repo/src/spec/spec_calls.cc" "src/spec/CMakeFiles/komodo_spec.dir/spec_calls.cc.o" "gcc" "src/spec/CMakeFiles/komodo_spec.dir/spec_calls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arm/CMakeFiles/komodo_arm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/komodo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/komodo_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
