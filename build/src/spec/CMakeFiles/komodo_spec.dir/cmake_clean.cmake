file(REMOVE_RECURSE
  "CMakeFiles/komodo_spec.dir/abstract_state.cc.o"
  "CMakeFiles/komodo_spec.dir/abstract_state.cc.o.d"
  "CMakeFiles/komodo_spec.dir/equivalence.cc.o"
  "CMakeFiles/komodo_spec.dir/equivalence.cc.o.d"
  "CMakeFiles/komodo_spec.dir/extract.cc.o"
  "CMakeFiles/komodo_spec.dir/extract.cc.o.d"
  "CMakeFiles/komodo_spec.dir/invariants.cc.o"
  "CMakeFiles/komodo_spec.dir/invariants.cc.o.d"
  "CMakeFiles/komodo_spec.dir/spec_calls.cc.o"
  "CMakeFiles/komodo_spec.dir/spec_calls.cc.o.d"
  "libkomodo_spec.a"
  "libkomodo_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/komodo_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
