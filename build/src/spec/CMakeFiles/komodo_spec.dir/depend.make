# Empty dependencies file for komodo_spec.
# This may be replaced when dependencies are built.
