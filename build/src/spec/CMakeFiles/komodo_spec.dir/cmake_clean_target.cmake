file(REMOVE_RECURSE
  "libkomodo_spec.a"
)
