# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("arm")
subdirs("crypto")
subdirs("core")
subdirs("spec")
subdirs("os")
subdirs("sgx")
subdirs("enclave")
