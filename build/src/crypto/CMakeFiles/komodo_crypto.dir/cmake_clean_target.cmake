file(REMOVE_RECURSE
  "libkomodo_crypto.a"
)
