# Empty dependencies file for komodo_crypto.
# This may be replaced when dependencies are built.
