file(REMOVE_RECURSE
  "CMakeFiles/komodo_crypto.dir/bignum.cc.o"
  "CMakeFiles/komodo_crypto.dir/bignum.cc.o.d"
  "CMakeFiles/komodo_crypto.dir/drbg.cc.o"
  "CMakeFiles/komodo_crypto.dir/drbg.cc.o.d"
  "CMakeFiles/komodo_crypto.dir/hmac.cc.o"
  "CMakeFiles/komodo_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/komodo_crypto.dir/rsa.cc.o"
  "CMakeFiles/komodo_crypto.dir/rsa.cc.o.d"
  "CMakeFiles/komodo_crypto.dir/sha256.cc.o"
  "CMakeFiles/komodo_crypto.dir/sha256.cc.o.d"
  "libkomodo_crypto.a"
  "libkomodo_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/komodo_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
