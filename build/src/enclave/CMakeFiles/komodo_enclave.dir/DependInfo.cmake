
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enclave/native_runtime.cc" "src/enclave/CMakeFiles/komodo_enclave.dir/native_runtime.cc.o" "gcc" "src/enclave/CMakeFiles/komodo_enclave.dir/native_runtime.cc.o.d"
  "/root/repo/src/enclave/notary.cc" "src/enclave/CMakeFiles/komodo_enclave.dir/notary.cc.o" "gcc" "src/enclave/CMakeFiles/komodo_enclave.dir/notary.cc.o.d"
  "/root/repo/src/enclave/programs.cc" "src/enclave/CMakeFiles/komodo_enclave.dir/programs.cc.o" "gcc" "src/enclave/CMakeFiles/komodo_enclave.dir/programs.cc.o.d"
  "/root/repo/src/enclave/sha256_program.cc" "src/enclave/CMakeFiles/komodo_enclave.dir/sha256_program.cc.o" "gcc" "src/enclave/CMakeFiles/komodo_enclave.dir/sha256_program.cc.o.d"
  "/root/repo/src/enclave/signing_enclave.cc" "src/enclave/CMakeFiles/komodo_enclave.dir/signing_enclave.cc.o" "gcc" "src/enclave/CMakeFiles/komodo_enclave.dir/signing_enclave.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arm/CMakeFiles/komodo_arm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/komodo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/komodo_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/komodo_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
