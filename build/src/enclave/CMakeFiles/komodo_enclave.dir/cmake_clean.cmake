file(REMOVE_RECURSE
  "CMakeFiles/komodo_enclave.dir/native_runtime.cc.o"
  "CMakeFiles/komodo_enclave.dir/native_runtime.cc.o.d"
  "CMakeFiles/komodo_enclave.dir/notary.cc.o"
  "CMakeFiles/komodo_enclave.dir/notary.cc.o.d"
  "CMakeFiles/komodo_enclave.dir/programs.cc.o"
  "CMakeFiles/komodo_enclave.dir/programs.cc.o.d"
  "CMakeFiles/komodo_enclave.dir/sha256_program.cc.o"
  "CMakeFiles/komodo_enclave.dir/sha256_program.cc.o.d"
  "CMakeFiles/komodo_enclave.dir/signing_enclave.cc.o"
  "CMakeFiles/komodo_enclave.dir/signing_enclave.cc.o.d"
  "libkomodo_enclave.a"
  "libkomodo_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/komodo_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
