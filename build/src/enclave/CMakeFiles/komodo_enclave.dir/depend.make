# Empty dependencies file for komodo_enclave.
# This may be replaced when dependencies are built.
