file(REMOVE_RECURSE
  "libkomodo_enclave.a"
)
