# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;9;komodo_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_notary_demo "/root/repo/build/examples/notary_demo")
set_tests_properties(example_notary_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;komodo_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attested_channel "/root/repo/build/examples/attested_channel")
set_tests_properties(example_attested_channel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;komodo_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_memory "/root/repo/build/examples/dynamic_memory")
set_tests_properties(example_dynamic_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;komodo_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adversary_drill "/root/repo/build/examples/adversary_drill")
set_tests_properties(example_adversary_drill PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;komodo_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_remote_attestation "/root/repo/build/examples/remote_attestation")
set_tests_properties(example_remote_attestation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;komodo_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_enclave_sha "/root/repo/build/examples/enclave_sha")
set_tests_properties(example_enclave_sha PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;komodo_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_password_vault "/root/repo/build/examples/password_vault")
set_tests_properties(example_password_vault PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;16;komodo_example;/root/repo/examples/CMakeLists.txt;0;")
