file(REMOVE_RECURSE
  "CMakeFiles/remote_attestation.dir/remote_attestation.cpp.o"
  "CMakeFiles/remote_attestation.dir/remote_attestation.cpp.o.d"
  "remote_attestation"
  "remote_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
