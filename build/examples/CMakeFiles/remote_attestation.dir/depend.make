# Empty dependencies file for remote_attestation.
# This may be replaced when dependencies are built.
