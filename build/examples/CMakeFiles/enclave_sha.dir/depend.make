# Empty dependencies file for enclave_sha.
# This may be replaced when dependencies are built.
