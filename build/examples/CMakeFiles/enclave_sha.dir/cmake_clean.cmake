file(REMOVE_RECURSE
  "CMakeFiles/enclave_sha.dir/enclave_sha.cpp.o"
  "CMakeFiles/enclave_sha.dir/enclave_sha.cpp.o.d"
  "enclave_sha"
  "enclave_sha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclave_sha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
