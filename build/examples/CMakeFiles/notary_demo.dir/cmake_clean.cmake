file(REMOVE_RECURSE
  "CMakeFiles/notary_demo.dir/notary_demo.cpp.o"
  "CMakeFiles/notary_demo.dir/notary_demo.cpp.o.d"
  "notary_demo"
  "notary_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notary_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
