# Empty compiler generated dependencies file for notary_demo.
# This may be replaced when dependencies are built.
