# Empty dependencies file for attested_channel.
# This may be replaced when dependencies are built.
