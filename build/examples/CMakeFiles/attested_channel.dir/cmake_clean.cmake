file(REMOVE_RECURSE
  "CMakeFiles/attested_channel.dir/attested_channel.cpp.o"
  "CMakeFiles/attested_channel.dir/attested_channel.cpp.o.d"
  "attested_channel"
  "attested_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attested_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
