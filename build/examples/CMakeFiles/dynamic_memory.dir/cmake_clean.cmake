file(REMOVE_RECURSE
  "CMakeFiles/dynamic_memory.dir/dynamic_memory.cpp.o"
  "CMakeFiles/dynamic_memory.dir/dynamic_memory.cpp.o.d"
  "dynamic_memory"
  "dynamic_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
