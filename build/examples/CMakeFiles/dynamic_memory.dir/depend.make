# Empty dependencies file for dynamic_memory.
# This may be replaced when dependencies are built.
