file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_linecounts.dir/bench_table2_linecounts.cpp.o"
  "CMakeFiles/bench_table2_linecounts.dir/bench_table2_linecounts.cpp.o.d"
  "bench_table2_linecounts"
  "bench_table2_linecounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_linecounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
