# Empty dependencies file for bench_table2_linecounts.
# This may be replaced when dependencies are built.
