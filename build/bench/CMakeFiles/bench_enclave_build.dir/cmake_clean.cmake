file(REMOVE_RECURSE
  "CMakeFiles/bench_enclave_build.dir/bench_enclave_build.cpp.o"
  "CMakeFiles/bench_enclave_build.dir/bench_enclave_build.cpp.o.d"
  "bench_enclave_build"
  "bench_enclave_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enclave_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
