# Empty compiler generated dependencies file for bench_enclave_build.
# This may be replaced when dependencies are built.
