# Empty compiler generated dependencies file for bench_sgx_comparison.
# This may be replaced when dependencies are built.
