file(REMOVE_RECURSE
  "CMakeFiles/bench_sgx_comparison.dir/bench_sgx_comparison.cpp.o"
  "CMakeFiles/bench_sgx_comparison.dir/bench_sgx_comparison.cpp.o.d"
  "bench_sgx_comparison"
  "bench_sgx_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sgx_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
