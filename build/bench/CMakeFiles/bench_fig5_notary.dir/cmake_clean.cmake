file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_notary.dir/bench_fig5_notary.cpp.o"
  "CMakeFiles/bench_fig5_notary.dir/bench_fig5_notary.cpp.o.d"
  "bench_fig5_notary"
  "bench_fig5_notary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_notary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
