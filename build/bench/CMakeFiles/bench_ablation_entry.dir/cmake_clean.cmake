file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_entry.dir/bench_ablation_entry.cpp.o"
  "CMakeFiles/bench_ablation_entry.dir/bench_ablation_entry.cpp.o.d"
  "bench_ablation_entry"
  "bench_ablation_entry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_entry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
