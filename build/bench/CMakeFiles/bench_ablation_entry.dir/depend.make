# Empty dependencies file for bench_ablation_entry.
# This may be replaced when dependencies are built.
