file(REMOVE_RECURSE
  "CMakeFiles/isa_param_test.dir/arm/isa_param_test.cc.o"
  "CMakeFiles/isa_param_test.dir/arm/isa_param_test.cc.o.d"
  "isa_param_test"
  "isa_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
