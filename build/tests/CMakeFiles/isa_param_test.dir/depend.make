# Empty dependencies file for isa_param_test.
# This may be replaced when dependencies are built.
