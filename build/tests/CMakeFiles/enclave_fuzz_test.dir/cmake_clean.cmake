file(REMOVE_RECURSE
  "CMakeFiles/enclave_fuzz_test.dir/core/enclave_fuzz_test.cc.o"
  "CMakeFiles/enclave_fuzz_test.dir/core/enclave_fuzz_test.cc.o.d"
  "enclave_fuzz_test"
  "enclave_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclave_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
