file(REMOVE_RECURSE
  "CMakeFiles/programs_test.dir/enclave/programs_test.cc.o"
  "CMakeFiles/programs_test.dir/enclave/programs_test.cc.o.d"
  "programs_test"
  "programs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
