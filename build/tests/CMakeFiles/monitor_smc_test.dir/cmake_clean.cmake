file(REMOVE_RECURSE
  "CMakeFiles/monitor_smc_test.dir/core/monitor_smc_test.cc.o"
  "CMakeFiles/monitor_smc_test.dir/core/monitor_smc_test.cc.o.d"
  "monitor_smc_test"
  "monitor_smc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_smc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
