# Empty dependencies file for monitor_smc_test.
# This may be replaced when dependencies are built.
