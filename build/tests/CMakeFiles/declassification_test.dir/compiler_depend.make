# Empty compiler generated dependencies file for declassification_test.
# This may be replaced when dependencies are built.
