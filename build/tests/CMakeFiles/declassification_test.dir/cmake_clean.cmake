file(REMOVE_RECURSE
  "CMakeFiles/declassification_test.dir/spec/declassification_test.cc.o"
  "CMakeFiles/declassification_test.dir/spec/declassification_test.cc.o.d"
  "declassification_test"
  "declassification_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/declassification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
