file(REMOVE_RECURSE
  "CMakeFiles/multithread_test.dir/core/multithread_test.cc.o"
  "CMakeFiles/multithread_test.dir/core/multithread_test.cc.o.d"
  "multithread_test"
  "multithread_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multithread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
