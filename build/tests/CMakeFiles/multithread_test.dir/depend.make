# Empty dependencies file for multithread_test.
# This may be replaced when dependencies are built.
