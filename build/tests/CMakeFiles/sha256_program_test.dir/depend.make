# Empty dependencies file for sha256_program_test.
# This may be replaced when dependencies are built.
