file(REMOVE_RECURSE
  "CMakeFiles/monitor_opts_test.dir/core/monitor_opts_test.cc.o"
  "CMakeFiles/monitor_opts_test.dir/core/monitor_opts_test.cc.o.d"
  "monitor_opts_test"
  "monitor_opts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_opts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
