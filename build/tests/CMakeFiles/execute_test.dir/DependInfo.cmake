
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arm/execute_test.cc" "tests/CMakeFiles/execute_test.dir/arm/execute_test.cc.o" "gcc" "tests/CMakeFiles/execute_test.dir/arm/execute_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/enclave/CMakeFiles/komodo_enclave.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/komodo_os.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/komodo_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/komodo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/komodo_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/arm/CMakeFiles/komodo_arm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/komodo_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
