# Empty dependencies file for execute_test.
# This may be replaced when dependencies are built.
