file(REMOVE_RECURSE
  "CMakeFiles/execute_test.dir/arm/execute_test.cc.o"
  "CMakeFiles/execute_test.dir/arm/execute_test.cc.o.d"
  "execute_test"
  "execute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/execute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
