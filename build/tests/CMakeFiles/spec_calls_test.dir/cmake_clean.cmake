file(REMOVE_RECURSE
  "CMakeFiles/spec_calls_test.dir/spec/spec_calls_test.cc.o"
  "CMakeFiles/spec_calls_test.dir/spec/spec_calls_test.cc.o.d"
  "spec_calls_test"
  "spec_calls_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_calls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
