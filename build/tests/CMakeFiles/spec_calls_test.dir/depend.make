# Empty dependencies file for spec_calls_test.
# This may be replaced when dependencies are built.
