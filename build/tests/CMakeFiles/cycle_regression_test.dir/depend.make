# Empty dependencies file for cycle_regression_test.
# This may be replaced when dependencies are built.
