file(REMOVE_RECURSE
  "CMakeFiles/cycle_regression_test.dir/core/cycle_regression_test.cc.o"
  "CMakeFiles/cycle_regression_test.dir/core/cycle_regression_test.cc.o.d"
  "cycle_regression_test"
  "cycle_regression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
