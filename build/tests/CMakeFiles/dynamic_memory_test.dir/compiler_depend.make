# Empty compiler generated dependencies file for dynamic_memory_test.
# This may be replaced when dependencies are built.
