file(REMOVE_RECURSE
  "CMakeFiles/dynamic_memory_test.dir/core/dynamic_memory_test.cc.o"
  "CMakeFiles/dynamic_memory_test.dir/core/dynamic_memory_test.cc.o.d"
  "dynamic_memory_test"
  "dynamic_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
