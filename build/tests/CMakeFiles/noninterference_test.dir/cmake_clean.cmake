file(REMOVE_RECURSE
  "CMakeFiles/noninterference_test.dir/spec/noninterference_test.cc.o"
  "CMakeFiles/noninterference_test.dir/spec/noninterference_test.cc.o.d"
  "noninterference_test"
  "noninterference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noninterference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
