# Empty dependencies file for noninterference_test.
# This may be replaced when dependencies are built.
