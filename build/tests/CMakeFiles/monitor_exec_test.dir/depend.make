# Empty dependencies file for monitor_exec_test.
# This may be replaced when dependencies are built.
