file(REMOVE_RECURSE
  "CMakeFiles/monitor_exec_test.dir/core/monitor_exec_test.cc.o"
  "CMakeFiles/monitor_exec_test.dir/core/monitor_exec_test.cc.o.d"
  "monitor_exec_test"
  "monitor_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
