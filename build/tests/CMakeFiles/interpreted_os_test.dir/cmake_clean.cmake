file(REMOVE_RECURSE
  "CMakeFiles/interpreted_os_test.dir/os/interpreted_os_test.cc.o"
  "CMakeFiles/interpreted_os_test.dir/os/interpreted_os_test.cc.o.d"
  "interpreted_os_test"
  "interpreted_os_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpreted_os_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
