# Empty dependencies file for interpreted_os_test.
# This may be replaced when dependencies are built.
