file(REMOVE_RECURSE
  "CMakeFiles/smc_param_test.dir/core/smc_param_test.cc.o"
  "CMakeFiles/smc_param_test.dir/core/smc_param_test.cc.o.d"
  "smc_param_test"
  "smc_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smc_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
