# Empty compiler generated dependencies file for smc_param_test.
# This may be replaced when dependencies are built.
