file(REMOVE_RECURSE
  "CMakeFiles/signing_enclave_test.dir/enclave/signing_enclave_test.cc.o"
  "CMakeFiles/signing_enclave_test.dir/enclave/signing_enclave_test.cc.o.d"
  "signing_enclave_test"
  "signing_enclave_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signing_enclave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
