# Empty dependencies file for signing_enclave_test.
# This may be replaced when dependencies are built.
