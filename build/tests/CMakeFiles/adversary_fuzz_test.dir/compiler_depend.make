# Empty compiler generated dependencies file for adversary_fuzz_test.
# This may be replaced when dependencies are built.
