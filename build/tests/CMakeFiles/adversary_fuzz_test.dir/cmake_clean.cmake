file(REMOVE_RECURSE
  "CMakeFiles/adversary_fuzz_test.dir/os/adversary_fuzz_test.cc.o"
  "CMakeFiles/adversary_fuzz_test.dir/os/adversary_fuzz_test.cc.o.d"
  "adversary_fuzz_test"
  "adversary_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
