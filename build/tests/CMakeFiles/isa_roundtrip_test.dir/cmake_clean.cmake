file(REMOVE_RECURSE
  "CMakeFiles/isa_roundtrip_test.dir/arm/isa_roundtrip_test.cc.o"
  "CMakeFiles/isa_roundtrip_test.dir/arm/isa_roundtrip_test.cc.o.d"
  "isa_roundtrip_test"
  "isa_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
