# Empty compiler generated dependencies file for isa_roundtrip_test.
# This may be replaced when dependencies are built.
