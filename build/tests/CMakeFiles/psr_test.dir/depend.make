# Empty dependencies file for psr_test.
# This may be replaced when dependencies are built.
