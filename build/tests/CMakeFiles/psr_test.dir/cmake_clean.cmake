file(REMOVE_RECURSE
  "CMakeFiles/psr_test.dir/arm/psr_test.cc.o"
  "CMakeFiles/psr_test.dir/arm/psr_test.cc.o.d"
  "psr_test"
  "psr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
