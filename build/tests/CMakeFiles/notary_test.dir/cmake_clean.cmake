file(REMOVE_RECURSE
  "CMakeFiles/notary_test.dir/enclave/notary_test.cc.o"
  "CMakeFiles/notary_test.dir/enclave/notary_test.cc.o.d"
  "notary_test"
  "notary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
